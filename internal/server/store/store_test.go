package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

func key(s string) simcache.Key { return simcache.Sum([]byte(s)) }

// TestPersistRoundTrip writes documents, persists, reopens from the
// same path, and checks every byte survives the round trip.
func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.json")
	s1, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string][]byte{
		"a": []byte(`{"schema_version":1,"design":"NDPExt"}`),
		"b": []byte(`{"schema_version":1,"design":"Nexus"}`),
	}
	for name, doc := range docs {
		if _, _, err := s1.Do(key(name), func() ([]byte, error) { return doc, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Persist(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Entries; got != len(docs) {
		t.Fatalf("warm-loaded %d entries, want %d", got, len(docs))
	}
	for name, want := range docs {
		got, ok := s2.Get(key(name))
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("doc %q: got %q ok=%v, want %q", name, got, ok, want)
		}
	}

	// A missing index file is a cold start, not an error.
	s3, err := Open(Options{Path: filepath.Join(t.TempDir(), "absent.json")})
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Stats().Entries; got != 0 {
		t.Errorf("cold start loaded %d entries", got)
	}
	// No path: Persist is a no-op.
	s4, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s4.Persist(); err != nil {
		t.Errorf("pathless Persist: %v", err)
	}
	if s4.Path() != "" {
		t.Errorf("pathless store reports path %q", s4.Path())
	}
}

// TestContainsIsStatsNeutral: the scheduler's batch planner peeks at
// residency under its admission lock; that peek must not perturb the
// hit/miss counters or entry recency.
func TestContainsIsStatsNeutral(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(key("a")) {
		t.Fatal("empty store contains a key")
	}
	if _, _, err := s.Do(key("a"), func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	for i := 0; i < 10; i++ {
		if !s.Contains(key("a")) {
			t.Fatal("stored key not contained")
		}
		if s.Contains(key("missing")) {
			t.Fatal("missing key contained")
		}
	}
	after := s.Stats()
	if before != after {
		t.Errorf("Contains moved the counters: %+v -> %+v", before, after)
	}
}

// TestContainsRespectsTTL: an expired entry must not count as resident,
// or the batch planner would under-reserve queue slots.
func TestContainsRespectsTTL(t *testing.T) {
	s, err := Open(Options{TTL: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Do(key("a"), func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if s.Contains(key("a")) {
		t.Error("expired entry still reported resident")
	}
}

func writeTrace(t *testing.T, path string, seed uint64) {
	t.Helper()
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = 100
	tr, err := gen(system.DefaultConfig(system.NDPExt).NumUnits(), seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
}

// TestTraceRegistryConfinement rejects every path shape that could
// reach outside the registry directory.
func TestTraceRegistryConfinement(t *testing.T) {
	r := NewTraceRegistry(t.TempDir())
	for _, name := range []string{"", ".", "..", "../x.ndptrc", "/etc/passwd", "a/../../x"} {
		if _, err := r.Resolve(name); err == nil {
			t.Errorf("Resolve(%q) escaped the registry", name)
		}
	}
	if p, err := r.Resolve("sub/ok.ndptrc"); err != nil {
		t.Errorf("Resolve rejected a legal nested name: %v", err)
	} else if got, want := p, filepath.Join(r.Dir(), "sub", "ok.ndptrc"); got != want {
		t.Errorf("Resolve = %q, want %q", got, want)
	}

	var disabled *TraceRegistry
	if disabled.Enabled() {
		t.Error("nil registry reports enabled")
	}
	for _, r := range []*TraceRegistry{NewTraceRegistry(""), nil} {
		if _, err := r.Resolve("x.ndptrc"); !errors.Is(err, ErrTracesDisabled) {
			t.Errorf("disabled registry Resolve err = %v, want ErrTracesDisabled", err)
		}
	}
	if _, err := NewTraceRegistry("").List(); !errors.Is(err, ErrTracesDisabled) {
		t.Error("disabled registry List did not return ErrTracesDisabled")
	}
}

// TestTraceRegistryDigestInvalidation: the digest must always name the
// bytes on disk — rewriting a file re-hashes it.
func TestTraceRegistryDigestInvalidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ndptrc")
	writeTrace(t, path, 1)
	r := NewTraceRegistry(dir)

	d1, err := r.Digest("t.ndptrc")
	if err != nil {
		t.Fatal(err)
	}
	// Cached: same fingerprint, same digest.
	d1b, err := r.Digest("t.ndptrc")
	if err != nil || d1b != d1 {
		t.Fatalf("stable re-digest: %q vs %q (err %v)", d1b, d1, err)
	}
	want, err := trace.DigestFile(path)
	if err != nil || d1 != want {
		t.Fatalf("registry digest %q != file digest %q (err %v)", d1, want, err)
	}

	writeTrace(t, path, 2)
	// The (size, mtime) fingerprint keys the cache; force a visibly
	// different mtime for filesystems with coarse timestamps.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	d2, err := r.Digest("t.ndptrc")
	if err != nil {
		t.Fatal(err)
	}
	if d2 == d1 {
		t.Error("rewritten file kept its stale digest")
	}
}

// TestTraceRegistryList enumerates native trace files sorted by name,
// skipping foreign files.
func TestTraceRegistryList(t *testing.T) {
	dir := t.TempDir()
	writeTrace(t, filepath.Join(dir, "b.ndptrc"), 1)
	writeTrace(t, filepath.Join(dir, "a.ndptrc"), 2)
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeTrace(t, filepath.Join(dir, "sub", "c.ndptrc"), 3)
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := NewTraceRegistry(dir).List()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, in := range infos {
		names = append(names, in.Name)
		if in.Digest == "" || in.Bytes == 0 {
			t.Errorf("trace %s listed without digest/size: %+v", in.Name, in)
		}
	}
	want := []string{"a.ndptrc", "b.ndptrc", filepath.Join("sub", "c.ndptrc")}
	if len(names) != len(want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List = %v, want %v", names, want)
		}
	}
}

// TestOpenQuarantinesCorruptIndex: a corrupt warm-restart index must
// not brick the server. Open renames it aside, logs loudly, and starts
// cold; the next Persist writes a clean index to the original path.
func TestOpenQuarantinesCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")

	// Build a real index, then flip a bit in its first byte so the
	// decoder trips immediately.
	s0, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s0.Do(key("a"), func() ([]byte, error) { return []byte(`{"x":1}`), nil }); err != nil {
		t.Fatal(err)
	}
	if err := s0.Persist(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged bytes.Buffer
	logf := func(format string, args ...any) { fmt.Fprintf(&logged, format+"\n", args...) }
	s1, err := Open(Options{Path: path, Logf: logf})
	if err != nil {
		t.Fatalf("Open refused to start on a corrupt index: %v", err)
	}
	if got := s1.Stats().Entries; got != 0 {
		t.Errorf("quarantined start loaded %d entries, want cold", got)
	}
	if got := s1.IndexQuarantines(); got != 1 {
		t.Errorf("IndexQuarantines = %d, want 1", got)
	}
	qpath := path + ".corrupt-1"
	if s1.QuarantinedPath() != qpath {
		t.Errorf("QuarantinedPath = %q, want %q", s1.QuarantinedPath(), qpath)
	}
	moved, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("corrupt index not preserved at %s: %v", qpath, err)
	}
	if !bytes.Equal(moved, raw) {
		t.Error("quarantined file bytes differ from the corrupt index")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt index still present at %s (err %v)", path, err)
	}
	if !strings.Contains(logged.String(), "QUARANTINE") {
		t.Errorf("quarantine was not logged loudly: %q", logged.String())
	}

	// The store works and re-persists a clean index.
	if _, _, err := s1.Do(key("b"), func() ([]byte, error) { return []byte(`{"y":2}`), nil }); err != nil {
		t.Fatal(err)
	}
	if err := s1.Persist(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Entries; got != 1 {
		t.Errorf("re-persisted index warm-loaded %d entries, want 1", got)
	}
	if got := s2.IndexQuarantines(); got != 0 {
		t.Errorf("clean reopen counted %d quarantines", got)
	}

	// A second corruption picks the next free slot: .corrupt-2.
	if err := os.WriteFile(path, []byte("still not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Path: path, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	if s3.QuarantinedPath() != path+".corrupt-2" {
		t.Errorf("second quarantine path = %q, want %q", s3.QuarantinedPath(), path+".corrupt-2")
	}
}

// TestOpenQuarantinesEmptyIndex: a zero-length index (e.g. a crash
// between create and write) quarantines like any other corruption.
func TestOpenQuarantinesEmptyIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Path: path, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatalf("Open refused to start on a zero-length index: %v", err)
	}
	if got := s.IndexQuarantines(); got != 1 {
		t.Errorf("IndexQuarantines = %d, want 1", got)
	}
	if _, err := os.Stat(path + ".corrupt-1"); err != nil {
		t.Errorf("zero-length index not quarantined: %v", err)
	}
	if err := s.Persist(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Path: path}); err != nil {
		t.Errorf("reopen after quarantine+persist: %v", err)
	}
}

// TestTraceRegistryQuarantine: a digest proven corrupt is rejected at
// admission time; fresh bytes under the same name lift the quarantine.
func TestTraceRegistryQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ndptrc")
	writeTrace(t, path, 1)
	r := NewTraceRegistry(dir)

	d1, err := r.Digest("t.ndptrc")
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("chunk 3: crc mismatch")
	if got := r.Quarantine("t.ndptrc", cause); got != d1 {
		t.Fatalf("Quarantine marked digest %q, want %q", got, d1)
	}
	if got := r.Quarantines(); got != 1 {
		t.Errorf("Quarantines = %d, want 1", got)
	}
	// Idempotent per digest: piggybacked failures count once.
	r.Quarantine("t.ndptrc", cause)
	if got := r.Quarantines(); got != 1 {
		t.Errorf("repeat Quarantine bumped the counter to %d", got)
	}

	_, err = r.Digest("t.ndptrc")
	if !errors.Is(err, ErrTraceQuarantined) {
		t.Fatalf("Digest err = %v, want ErrTraceQuarantined", err)
	}
	if !strings.Contains(err.Error(), "crc mismatch") {
		t.Errorf("quarantine diagnostic lost: %v", err)
	}

	// Resolve still works — the name is not poisoned, the bytes are.
	if _, err := r.Resolve("t.ndptrc"); err != nil {
		t.Errorf("Resolve of quarantined trace: %v", err)
	}

	// Rewriting the file with fresh bytes yields a new digest and lifts
	// the quarantine for this name.
	writeTrace(t, path, 2)
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	d2, err := r.Digest("t.ndptrc")
	if err != nil {
		t.Fatalf("fresh bytes still quarantined: %v", err)
	}
	if d2 == d1 {
		t.Error("rewritten file kept the quarantined digest")
	}

	// A vanished file marks nothing.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if got := r.Quarantine("t.ndptrc", cause); got != "" {
		t.Errorf("Quarantine of a vanished file marked %q", got)
	}
	if got := r.Quarantines(); got != 1 {
		t.Errorf("vanished-file Quarantine bumped the counter to %d", got)
	}

	// Nil registry: counter reads as zero.
	var nilReg *TraceRegistry
	if got := nilReg.Quarantines(); got != 0 {
		t.Errorf("nil registry Quarantines = %d", got)
	}
}
