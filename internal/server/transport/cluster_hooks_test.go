// Tests for the cluster observability hooks: Options.Cluster embeds a
// cluster section in the health/stats/jobs documents, and
// Options.OwnerOf annotates per-job owner on the overview pages. Both
// are plain callbacks — transport never imports the cluster package —
// so fakes stand in for the ring here.
package transport

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
)

func newClusteredStack(t *testing.T) (*scheduler.Scheduler, *httptest.Server) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduler.New(st, nil, scheduler.Options{Workers: 2})
	s.Start()
	srv := httptest.NewServer(NewHandler(s, Options{
		Cluster: func() any {
			return map[string]any{"self": "http://n0", "ring_size": 48}
		},
		OwnerOf: func(keyHex string) string { return "http://owner-of-" + keyHex[:4] },
	}))
	t.Cleanup(func() {
		srv.Close()
		s.Drain(context.Background())
	})
	return s, srv
}

// TestClusterSectionInObservability: every overview document carries
// the cluster section verbatim when the hook is set, and omits it when
// it is not.
func TestClusterSectionInObservability(t *testing.T) {
	_, srv := newClusteredStack(t)
	for _, path := range []string{"/healthz", "/v1/healthz", "/jobs", "/v1/stats"} {
		var doc struct {
			Cluster map[string]any `json:"cluster"`
		}
		if err := json.Unmarshal(getBody(t, srv.URL+path, http.StatusOK), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Cluster["self"] != "http://n0" || doc.Cluster["ring_size"] != float64(48) {
			t.Errorf("%s cluster section = %v, want the hook's document", path, doc.Cluster)
		}
	}

	// Without the hook the section disappears entirely.
	_, plain := newTestStack(t, scheduler.Options{Workers: 1})
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(getBody(t, plain.URL+"/v1/healthz", http.StatusOK), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["cluster"]; ok {
		t.Error("standalone /v1/healthz carries a cluster section")
	}
}

// TestOwnerAnnotation: job statuses on the overview pages name their
// ring owner; a standalone server leaves the field absent.
func TestOwnerAnnotation(t *testing.T) {
	_, srv := newClusteredStack(t)
	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`)
	st := decode[scheduler.JobStatus](t, resp)
	pollJobDone(t, srv.URL, st.ID)

	var jo struct {
		Jobs []scheduler.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(getBody(t, srv.URL+"/jobs", http.StatusOK), &jo); err != nil {
		t.Fatal(err)
	}
	if len(jo.Jobs) != 1 {
		t.Fatalf("overview lists %d jobs, want 1", len(jo.Jobs))
	}
	got := jo.Jobs[0]
	if got.Key == "" || got.Owner != "http://owner-of-"+got.Key[:4] {
		t.Errorf("job owner = %q for key %q, want the OwnerOf annotation", got.Owner, got.Key)
	}

	// Single job GET is annotated too.
	one := decode[scheduler.JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`))
	if one.Owner == "" {
		t.Error("submission response missing owner annotation")
	}
}
