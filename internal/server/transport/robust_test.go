package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// writeTransportTrace writes a small valid trace file into dir.
func writeTransportTrace(t *testing.T, dir, name string) {
	t.Helper()
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = 100
	tr, err := gen(system.DefaultConfig(system.NDPExt).NumUnits(), 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.SaveFile(dir+"/"+name, tr); err != nil {
		t.Fatal(err)
	}
}

// newTestStackOpts is newTestStack with transport options and an
// optional trace directory.
func newTestStackOpts(t *testing.T, sopt scheduler.Options, topt Options, traceDir string) (*scheduler.Scheduler, *httptest.Server) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var reg *store.TraceRegistry
	if traceDir != "" {
		reg = store.NewTraceRegistry(traceDir)
	}
	s := scheduler.New(st, reg, sopt)
	s.Start()
	srv := httptest.NewServer(NewHandler(s, topt))
	t.Cleanup(func() {
		srv.Close()
		s.Drain(context.Background())
	})
	return s, srv
}

// TestMalformedSubmissions: whatever garbage arrives at the submission
// endpoints, the answer is a 4xx with a JSON error body — never a 500,
// never a connection-killing panic.
func TestMalformedSubmissions(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{Workers: 1, QueueDepth: 4})

	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"not json", "/v1/jobs", `this is not json`, http.StatusBadRequest},
		{"empty body", "/v1/jobs", ``, http.StatusBadRequest},
		{"json array", "/v1/jobs", `[1,2,3]`, http.StatusBadRequest},
		{"unknown field", "/v1/jobs", `{"workload":"pr","bogus":true}`, http.StatusBadRequest},
		{"wrong type", "/v1/jobs", `{"workload":"pr","accesses":"many"}`, http.StatusBadRequest},
		{"negative accesses", "/v1/jobs", `{"workload":"pr","accesses":-5}`, http.StatusBadRequest},
		{"negative scale", "/v1/jobs", `{"workload":"pr","scale":-1}`, http.StatusBadRequest},
		{"negative epoch_cycles", "/v1/jobs", `{"workload":"pr","epoch_cycles":-1}`, http.StatusBadRequest},
		{"negative deadline", "/v1/jobs", `{"workload":"pr","deadline_ms":-100}`, http.StatusBadRequest},
		{"string deadline", "/v1/jobs", `{"workload":"pr","deadline_ms":"soon"}`, http.StatusBadRequest},
		{"unknown workload", "/v1/jobs", `{"workload":"nope"}`, http.StatusBadRequest},
		{"workload and trace", "/v1/jobs", `{"workload":"pr","trace":"t.ndptrc"}`, http.StatusBadRequest},
		{"trace escape", "/v1/jobs", `{"trace":"../../etc/passwd"}`, http.StatusBadRequest},
		{"batch not json", "/v1/batch", `{{{{`, http.StatusBadRequest},
		{"batch unknown field", "/v1/batch", `{"designs":["NDPExt"],"workloads":["pr"],"oops":1}`, http.StatusBadRequest},
		{"batch no designs", "/v1/batch", `{"designs":[],"workloads":["pr"]}`, http.StatusBadRequest},
		{"batch negative dims", "/v1/batch", `{"designs":["NDPExt"],"workloads":["pr"],"base":{"accesses":-1}}`, http.StatusBadRequest},
		{"batch bad deadline", "/v1/batch", `{"designs":["NDPExt"],"workloads":["pr"],"base":{"deadline_ms":-1}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, srv.URL+tc.path, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode >= 500 {
				t.Fatalf("POST %s %q returned %d — malformed input must never 5xx", tc.path, tc.body, resp.StatusCode)
			}
			if resp.StatusCode != tc.want {
				t.Errorf("POST %s %q = %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
			}
			var doc struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if doc.Error == "" {
				t.Error("error body missing the diagnostic")
			}
		})
	}
}

// FuzzSubmitBody: arbitrary submission bodies must map to clean 4xx/2xx
// responses, never a 5xx.
func FuzzSubmitBody(f *testing.F) {
	for _, seed := range []string{
		``, `{}`, `not json`, `[{}]`, `{"workload":`, "\x00\xff\xfe",
		`{"workload":"pr","deadline_ms":-9223372036854775808}`,
		"{\"trace\":\"\x00\"}", `{"workload":"pr","accesses":1e99}`,
	} {
		f.Add(seed)
	}
	st, err := store.Open(store.Options{})
	if err != nil {
		f.Fatal(err)
	}
	s := scheduler.New(st, nil, scheduler.Options{Workers: 1, QueueDepth: 2})
	// Deliberately not Started: admission (decode, validate, key, queue)
	// is the surface under test; nothing needs to simulate.
	h := NewHandler(s, Options{})
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("body %q produced %d", body, rec.Code)
		}
	})
}

// TestMaxBodyLimit: submission bodies over the cap get 413 with a JSON
// error, on both endpoints; just-under-cap bodies decode normally.
func TestMaxBodyLimit(t *testing.T) {
	_, srv := newTestStackOpts(t, scheduler.Options{Workers: 1, QueueDepth: 4},
		Options{MaxBody: 512}, "")

	huge := fmt.Sprintf(`{"workload":"pr","faults":%q}`, strings.Repeat("x", 4096))
	for _, path := range []string{"/v1/jobs", "/v1/batch"} {
		resp := postJSON(t, srv.URL+path, huge)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized POST %s = %d, want 413", path, resp.StatusCode)
		}
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Error == "" {
			t.Errorf("413 body not a JSON error doc (err %v, doc %+v)", err, doc)
		}
		resp.Body.Close()
	}

	// A small legitimate body still works under the tightened cap.
	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Errorf("small POST under cap = %d, want 202/200", resp.StatusCode)
	}
}

// TestQuarantinedTrace422: a submission naming a quarantined digest is
// rejected with 422 — a terminal "this input is bad", distinct from the
// retryable 4xx/5xx family the client backs off on.
func TestQuarantinedTrace422(t *testing.T) {
	dir := t.TempDir()
	s, srv := newTestStackOpts(t, scheduler.Options{Workers: 1, QueueDepth: 4},
		Options{}, dir)
	writeTransportTrace(t, dir, "t.ndptrc")
	if d := s.Traces().Quarantine("t.ndptrc", errors.New("chunk 0: CRC mismatch")); d == "" {
		t.Fatal("quarantine failed to mark the digest")
	}

	for _, tc := range []struct{ path, body string }{
		{"/v1/jobs", `{"trace":"t.ndptrc"}`},
		{"/v1/batch", `{"designs":["NDPExt"],"traces":["t.ndptrc"]}`},
	} {
		resp := postJSON(t, srv.URL+tc.path, tc.body)
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("POST %s quarantined trace = %d, want 422 (%s)", tc.path, resp.StatusCode, doc.Error)
		}
		if !strings.Contains(doc.Error, "quarantined") {
			t.Errorf("422 body does not say quarantined: %q", doc.Error)
		}
	}
}

// TestHealthzRobustnessCounters: /healthz carries the recovered-fault
// counters, and a worker panic shows up there.
func TestHealthzRobustnessCounters(t *testing.T) {
	_, srv := newTestStackOpts(t, scheduler.Options{
		Workers: 1, QueueDepth: 4,
		SimHook: func(spec scheduler.JobSpec) {
			if spec.Seed == 666 {
				panic("chaos: injected panic")
			}
		},
	}, Options{}, "")

	var health struct {
		Status            string `json:"status"`
		PanicsRecovered   uint64 `json:"panics_recovered"`
		IndexQuarantined  uint64 `json:"index_quarantined"`
		TracesQuarantined uint64 `json:"traces_quarantined"`
	}
	if err := json.Unmarshal(getBody(t, srv.URL+"/healthz", http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.PanicsRecovered != 0 {
		t.Fatalf("fresh healthz = %+v", health)
	}

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","seed":666,"accesses":1000}`)
	st := decode[scheduler.JobStatus](t, resp)
	final := pollJobDone(t, srv.URL, st.ID)
	if final.State != scheduler.StateFailed {
		t.Fatalf("poison job state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "injected panic") {
		t.Errorf("poison job error = %q", final.Error)
	}

	if err := json.Unmarshal(getBody(t, srv.URL+"/healthz", http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("healthz status after panic = %q — the process must stay healthy", health.Status)
	}
	if health.PanicsRecovered != 1 {
		t.Errorf("panics_recovered = %d, want 1", health.PanicsRecovered)
	}
}
