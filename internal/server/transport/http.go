// Package transport is the HTTP edge of the serving stack: JSON
// routing, request decoding and validation, SSE streaming, and status
// codes. It holds no scheduling or storage logic of its own — every
// decision is delegated to the scheduler layer — and it is the only
// serving-stack layer allowed to import net/http (enforced by an arch
// test). That seam is where a sharded-cluster mode will later plug
// consistent-hash forwarding without touching the engine.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// Handler returns the HTTP API over a scheduler:
//
//	POST /v1/jobs               submit a JobSpec; 202 with the job status
//	                            (200 immediately when served from cache),
//	                            429 + adaptive Retry-After under backpressure,
//	                            503 while draining
//	GET  /v1/jobs               list all jobs (newest last)
//	GET  /v1/jobs/{id}          one job's status (result inlined when done)
//	GET  /v1/jobs/{id}/result   the raw canonical result document
//	GET  /v1/jobs/{id}/events   live progress as Server-Sent Events
//	POST /v1/batch              submit a BatchSpec matrix; 202 with the
//	                            batch status (200 when every cell was
//	                            already cached); also served at /batch
//	GET  /v1/batch/{id}         batch status with per-cell states
//	GET  /v1/batch/{id}/result  the canonical matrix document (409 until
//	                            every cell is terminal)
//	GET  /v1/batch/{id}/events  multiplexed per-cell progress as SSE
//	GET  /v1/workloads          available workload generators
//	GET  /v1/traces             the trace registry (name, bytes, digest)
//	GET  /v1/stats              queue, cache, and dedup counters
//	GET  /v1/healthz            liveness + queue/cache/dedup counters;
//	                            also served at /healthz
//	GET  /jobs                  job summaries wrapped with the counters
func Handler(s *scheduler.Scheduler) http.Handler {
	return NewHandler(s, Options{})
}

// Options configures the transport edge. Zero values take the
// documented defaults.
type Options struct {
	// MaxBody bounds job/batch submission bodies in bytes; oversized
	// requests get 413. Default 1 MiB — a legitimate batch matrix is a
	// few KiB; megabytes of spec is an accident or an attack.
	MaxBody int64
	// Cluster, when non-nil, is polled per request to embed a cluster
	// document (ring size, peer states, forwarding counters) in
	// /v1/healthz, /v1/stats, and /jobs. The cluster layer installs it;
	// single-node servers leave it nil and the section is omitted.
	Cluster func() any
	// OwnerOf, when non-nil, maps a job's content-address hex to the
	// cluster node owning it, annotating job statuses and listings with
	// an "owner" field. Nil outside cluster mode.
	OwnerOf func(keyHex string) string
}

// NewHandler is Handler with explicit transport options.
func NewHandler(s *scheduler.Scheduler, opt Options) http.Handler {
	if opt.MaxBody <= 0 {
		opt.MaxBody = 1 << 20
	}
	a := &api{s: s, maxBody: opt.MaxBody, cluster: opt.Cluster, ownerOf: opt.OwnerOf}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", a.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.handleEvents)
	mux.HandleFunc("POST /v1/batch", a.handleBatchSubmit)
	mux.HandleFunc("POST /batch", a.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batch/{id}", a.handleBatchStatus)
	mux.HandleFunc("GET /v1/batch/{id}/result", a.handleBatchResult)
	mux.HandleFunc("GET /v1/batch/{id}/events", a.handleBatchEvents)
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, workloads.Names())
	})
	mux.HandleFunc("GET /v1/traces", a.handleTraces)
	mux.HandleFunc("GET /v1/stats", a.handleStats)
	mux.HandleFunc("GET /v1/healthz", a.handleHealthz)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	mux.HandleFunc("GET /jobs", a.handleJobsOverview)
	return mux
}

// api binds the handlers to one scheduler.
type api struct {
	s       *scheduler.Scheduler
	maxBody int64
	cluster func() any
	ownerOf func(keyHex string) string
}

// annotateOwner fills the status's Owner field from the cluster ring
// (no-op outside cluster mode).
func (a *api) annotateOwner(st *scheduler.JobStatus) {
	if a.ownerOf != nil {
		st.Owner = a.ownerOf(st.Key)
	}
}

// clusterDoc returns the embedded cluster section (nil outside cluster
// mode, which omits the JSON field).
func (a *api) clusterDoc() any {
	if a.cluster == nil {
		return nil
	}
	return a.cluster()
}

// errorDoc is the uniform error body. ValidDesigns is populated only
// when the error is an unknown-design rejection, so clients can
// enumerate what the server accepts without a second request.
type errorDoc struct {
	Error        string   `json:"error"`
	ValidDesigns []string `json:"valid_designs,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorDoc{Error: err.Error()})
}

// writeSubmitError maps a submission rejection to a status code. An
// unknown design is semantically invalid rather than malformed, so it
// gets 422 with the accepted design list; everything else is a 400.
func writeSubmitError(w http.ResponseWriter, err error) {
	var ude *system.UnknownDesignError
	if errors.As(err, &ude) {
		writeJSON(w, http.StatusUnprocessableEntity,
			errorDoc{Error: ude.Error(), ValidDesigns: ude.Valid})
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// writeQueueFull surfaces backpressure: 429 with the scheduler's
// adaptive Retry-After hint (queue depth × recent mean job duration,
// clamped), rounded up to whole seconds.
func (a *api) writeQueueFull(w http.ResponseWriter, err error) {
	secs := int(math.Ceil(a.s.RetryAfterHint().Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, err)
}

// decodeBody decodes one submission body into v under the body-size
// cap, writing the error response itself on failure: 413 for oversized
// bodies, 400 for everything undecodable. Submission handlers must
// never 500 on input, however malformed.
func (a *api) decodeBody(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, a.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("%s exceeds the %d-byte body limit", what, tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", what, err))
		return false
	}
	return true
}

func (a *api) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec scheduler.JobSpec
	if !a.decodeBody(w, r, "job spec", &spec) {
		return
	}
	job, err := a.s.Submit(spec)
	switch {
	case errors.Is(err, scheduler.ErrQueueFull):
		a.writeQueueFull(w, err)
		return
	case errors.Is(err, scheduler.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, store.ErrTraceQuarantined):
		// The named bytes are proven corrupt; retrying cannot help.
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if job.State().Terminal() {
		code = http.StatusOK // cache hit: already complete
	}
	st := job.Status()
	a.annotateOwner(&st)
	writeJSON(w, code, st)
}

func (a *api) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.jobSummaries())
}

// jobSummaries lists every job's status with the result payload
// stripped (listings stay small; fetch results per job).
func (a *api) jobSummaries() []scheduler.JobStatus {
	jobs := a.s.Jobs()
	out := make([]scheduler.JobStatus, len(jobs))
	for i, j := range jobs {
		st := j.Status()
		st.Result = nil
		a.annotateOwner(&st)
		out[i] = st
	}
	return out
}

func (a *api) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := a.s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	st := job.Status()
	a.annotateOwner(&st)
	writeJSON(w, http.StatusOK, st)
}

func (a *api) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := a.s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	st := job.Status()
	if len(st.Result) == 0 {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; no result yet", job.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(st.Result)
}

// sseWriter prepares w for Server-Sent Events and returns the flusher,
// or nil when the connection cannot stream.
func sseWriter(w http.ResponseWriter) http.Flusher {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return nil
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return fl
}

// writeSSE emits one event; payload marshal failures degrade to an
// inline error object rather than killing the stream.
func writeSSE(w http.ResponseWriter, fl http.Flusher, event string, data any) {
	body, err := json.Marshal(data)
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, body)
	fl.Flush()
}

// handleEvents streams the job's progress as SSE: the full history is
// replayed first, then live events follow until the job finishes or the
// client disconnects. Piggybacked jobs stream their leader's progress.
// A client that cannot keep up receives "lagged" events counting what
// it missed instead of back-pressuring the simulation.
func (a *api) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := a.s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	fl := sseWriter(w)
	if fl == nil {
		return
	}
	ch, unsub := job.ProgressTarget().Subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal event delivered; stream complete
			}
			writeSSE(w, fl, ev.Type, ev.Data)
		case <-r.Context().Done():
			return
		}
	}
}

func (a *api) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var spec scheduler.BatchSpec
	if !a.decodeBody(w, r, "batch spec", &spec) {
		return
	}
	b, err := a.s.SubmitBatch(spec)
	switch {
	case errors.Is(err, scheduler.ErrQueueFull):
		a.writeQueueFull(w, err)
		return
	case errors.Is(err, scheduler.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, store.ErrTraceQuarantined):
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	case err != nil:
		writeSubmitError(w, err)
		return
	}
	st := b.Status()
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK // every cell was already cached
	}
	writeJSON(w, code, st)
}

func (a *api) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	b, ok := a.s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such batch %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, b.Status())
}

func (a *api) handleBatchResult(w http.ResponseWriter, r *http.Request) {
	b, ok := a.s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such batch %q", r.PathValue("id")))
		return
	}
	doc, err := b.ResultDoc()
	if err != nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("batch %s is %s; no matrix document yet", b.ID, b.State()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// batchEventDoc is the SSE payload of multiplexed batch events: the
// cell's matrix position wrapping the original event payload.
type batchEventDoc struct {
	Cell     int    `json:"cell"`
	Design   string `json:"design"`
	Workload string `json:"workload,omitempty"`
	Trace    string `json:"trace,omitempty"`
	Data     any    `json:"data"`
}

// handleBatchEvents multiplexes every cell's progress stream onto one
// SSE connection; each event keeps its type and gains the cell's matrix
// position. A final "batch" event carries the terminal batch status.
func (a *api) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	b, ok := a.s.Batch(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such batch %q", r.PathValue("id")))
		return
	}
	fl := sseWriter(w)
	if fl == nil {
		return
	}
	ch, unsub := b.Subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Every cell stream closed: the batch is terminal.
				writeSSE(w, fl, "batch", b.Status())
				return
			}
			writeSSE(w, fl, ev.Event.Type, batchEventDoc{
				Cell: ev.Cell, Design: ev.Design, Workload: ev.Workload,
				Trace: ev.Trace, Data: ev.Event.Data,
			})
		case <-r.Context().Done():
			return
		}
	}
}

func (a *api) handleTraces(w http.ResponseWriter, r *http.Request) {
	reg := a.s.Traces()
	doc := struct {
		Enabled bool              `json:"enabled"`
		Traces  []store.TraceInfo `json:"traces"`
	}{Enabled: reg.Enabled(), Traces: []store.TraceInfo{}}
	if reg.Enabled() {
		list, err := reg.List()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if list != nil {
			doc.Traces = list
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// counters is the shared block of engine counters exposed by /v1/stats,
// /healthz, and /jobs: queue depth, cache stats, sims-run, rejected.
type counters struct {
	Queued   int            `json:"queued"`
	QueueCap int            `json:"queue_cap"`
	SimsRun  uint64         `json:"sims_run"`
	Rejected uint64         `json:"rejected"`
	Cache    map[string]any `json:"cache"`
	// Robustness counters: every recovered fault leaves a trail here,
	// so "the process survived" is observable, not just asserted.
	PanicsRecovered   uint64 `json:"panics_recovered"`
	IndexQuarantined  uint64 `json:"index_quarantined"`
	TracesQuarantined uint64 `json:"traces_quarantined"`
}

func (a *api) counters() counters {
	queued, capn := a.s.QueueDepth()
	cs := a.s.CacheStats()
	return counters{
		Queued:   queued,
		QueueCap: capn,
		SimsRun:  a.s.SimsRun(),
		Rejected: a.s.Rejected(),
		Cache: map[string]any{
			"hits": cs.Hits, "misses": cs.Misses, "dedups": cs.Dedups,
			"evictions": cs.Evictions, "expirations": cs.Expirations,
			"entries": cs.Entries,
		},
		PanicsRecovered:   a.s.PanicsRecovered(),
		IndexQuarantined:  a.s.IndexQuarantines(),
		TracesQuarantined: a.s.TraceQuarantines(),
	}
}

// statsDoc is the GET /v1/stats body.
type statsDoc struct {
	Workers int `json:"workers"`
	counters
	Jobs       int                     `json:"jobs"`
	Batches    int                     `json:"batches"`
	StatesById map[scheduler.State]int `json:"job_states"`
	Cluster    any                     `json:"cluster,omitempty"`
}

func (a *api) handleStats(w http.ResponseWriter, r *http.Request) {
	states := make(map[scheduler.State]int)
	for _, j := range a.s.Jobs() {
		states[j.State()]++
	}
	writeJSON(w, http.StatusOK, statsDoc{
		Workers:    a.s.Workers(),
		counters:   a.counters(),
		Jobs:       totalJobs(states),
		Batches:    len(a.s.Batches()),
		StatesById: states,
		Cluster:    a.clusterDoc(),
	})
}

// healthDoc is the GET /healthz body: liveness plus the counters an
// operator or load balancer wants in one probe, and — in cluster
// mode — the ring/peer/forwarding section.
type healthDoc struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
	counters
	Cluster any `json:"cluster,omitempty"`
}

func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthDoc{
		Status:   "ok",
		Workers:  a.s.Workers(),
		counters: a.counters(),
		Cluster:  a.clusterDoc(),
	})
}

// jobsOverviewDoc is the GET /jobs body: the counters plus per-job
// summaries (results stripped, owners annotated in cluster mode).
type jobsOverviewDoc struct {
	counters
	Jobs    []scheduler.JobStatus `json:"jobs"`
	Cluster any                   `json:"cluster,omitempty"`
}

func (a *api) handleJobsOverview(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, jobsOverviewDoc{
		counters: a.counters(),
		Jobs:     a.jobSummaries(),
		Cluster:  a.clusterDoc(),
	})
}

func totalJobs(states map[scheduler.State]int) int {
	n := 0
	for _, c := range states {
		n += c
	}
	return n
}
