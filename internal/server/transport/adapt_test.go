package transport

import (
	"testing"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/system"
)

// TestUnknownDesign422 maps the structured ParseDesign error to a 422
// whose body enumerates every accepted design, on both the job and
// batch submission paths.
func TestUnknownDesign422(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{Workers: 1, QueueDepth: 4})

	check := func(url, body string) {
		t.Helper()
		resp := postJSON(t, url, body)
		if resp.StatusCode != 422 {
			t.Fatalf("POST %s = %d, want 422", url, resp.StatusCode)
		}
		doc := decode[errorDoc](t, resp)
		if len(doc.ValidDesigns) != len(system.AllDesigns()) {
			t.Fatalf("valid_designs = %v, want all %d designs", doc.ValidDesigns, len(system.AllDesigns()))
		}
		found := false
		for _, d := range doc.ValidDesigns {
			if d == "NDPExt-MAB" {
				found = true
			}
		}
		if !found {
			t.Fatalf("valid_designs missing NDPExt-MAB: %v", doc.ValidDesigns)
		}
	}

	check(srv.URL+"/v1/jobs", `{"workload":"pr","design":"bogus"}`)
	check(srv.URL+"/v1/batch", `{"designs":["bogus"],"workloads":["pr"]}`)

	// A malformed-but-known spec still gets a plain 400 with no list.
	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"no-such-workload"}`)
	if resp.StatusCode != 400 {
		t.Fatalf("unknown workload = %d, want 400", resp.StatusCode)
	}
	if doc := decode[errorDoc](t, resp); len(doc.ValidDesigns) != 0 {
		t.Fatalf("400 body unexpectedly carries valid_designs: %v", doc.ValidDesigns)
	}
}
