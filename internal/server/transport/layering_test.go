package transport

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestLayering enforces the serving stack's one-way dependency rule at
// the source level, tests included:
//
//	transport -> scheduler -> store
//	                 \-> result
//
// transport is the only layer allowed to import net/http; the engine
// and persistence layers must stay HTTP-free so they can be driven
// directly by tests, CLIs, or a future sharded-cluster fan-out.
func TestLayering(t *testing.T) {
	forbidden := map[string][]string{
		"../scheduler": {"net/http", "ndpext/internal/server/transport",
			"ndpext/internal/cluster"},
		"../store": {"net/http", "ndpext/internal/server/transport",
			"ndpext/internal/server/scheduler", "ndpext/internal/server/result",
			"ndpext/internal/cluster"},
		"../result": {"net/http", "ndpext/internal/server/transport",
			"ndpext/internal/server/scheduler", "ndpext/internal/server/store",
			"ndpext/internal/cluster"},
		// The chaos injector drives the engine layers directly; it must
		// stay HTTP-free so fault injection never depends on transport.
		"../chaos": {"net/http", "ndpext/internal/server/transport",
			"ndpext/internal/cluster"},
		// The cluster layer sits BESIDE transport at the HTTP edge: it
		// may import net/http and the client, but the two edge packages
		// must never import each other (cluster wraps transport's handler
		// as a plain http.Handler).
		".":             {"ndpext/internal/cluster"},
		"../../cluster": {"ndpext/internal/server/transport"},
	}
	fset := token.NewFileSet()
	for dir, banned := range forbidden {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no Go files under %s — did the layer move?", dir)
		}
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatal(err)
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatal(err)
				}
				for _, bad := range banned {
					if path == bad || strings.HasPrefix(path, bad+"/") {
						t.Errorf("%s imports %s, breaking the transport->scheduler->store layering", file, path)
					}
				}
			}
		}
	}
}
