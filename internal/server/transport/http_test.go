package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
)

func newTestStack(t *testing.T, opt scheduler.Options) (*scheduler.Scheduler, *httptest.Server) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduler.New(st, nil, opt)
	s.Start()
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Drain(context.Background())
	})
	return s, srv
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// compact canonicalizes JSON bytes: writeJSON re-indents embedded
// RawMessage payloads, so byte comparisons happen on the compact form.
func compact(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getBody(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.Bytes()
}

func pollJobDone(t *testing.T, base, id string) scheduler.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[scheduler.JobStatus](t, resp)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return scheduler.JobStatus{}
}

// TestHTTPSurface walks the single-job API end to end: submit, poll,
// fetch the result, and hit the cache on resubmission.
func TestHTTPSurface(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{Workers: 2, QueueDepth: 8})

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	st := decode[scheduler.JobStatus](t, resp)
	if st.ID == "" || st.Key == "" {
		t.Fatalf("submit response missing id/key: %+v", st)
	}
	// Defaults are echoed normalized.
	if st.Spec.Seed != 1 || st.Spec.Design != "NDPExt" {
		t.Errorf("spec not normalized in response: %+v", st.Spec)
	}

	final := pollJobDone(t, srv.URL, st.ID)
	if final.State != scheduler.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	doc := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/result", http.StatusOK)
	var res struct {
		SchemaVersion int    `json:"schema_version"`
		Design        string `json:"design"`
	}
	if err := json.Unmarshal(doc, &res); err != nil {
		t.Fatal(err)
	}
	if res.SchemaVersion != 1 || res.Design != "NDPExt" {
		t.Errorf("result doc header = %+v", res)
	}

	// Identical resubmission: 200 with the cached result inline.
	resp = postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit = %d, want 200", resp.StatusCode)
	}
	dup := decode[scheduler.JobStatus](t, resp)
	if !dup.CacheHit || !bytes.Equal(compact(t, dup.Result), compact(t, doc)) {
		t.Errorf("cached submit: cache_hit=%v, result bytes differ", dup.CacheHit)
	}

	// Listings strip results.
	var list []scheduler.JobStatus
	if err := json.Unmarshal(getBody(t, srv.URL+"/v1/jobs", http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(list))
	}
	for _, j := range list {
		if len(j.Result) != 0 {
			t.Error("listing inlines result payloads")
		}
	}

	// Error paths.
	for body, want := range map[string]int{
		`{"workload":"nope"}`: http.StatusBadRequest,
		`{"bogus_field":1}`:   http.StatusBadRequest,
		`not json`:            http.StatusBadRequest,
	} {
		resp := postJSON(t, srv.URL+"/v1/jobs", body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("submit %q = %d, want %d", body, resp.StatusCode, want)
		}
	}
	getBody(t, srv.URL+"/v1/jobs/j-999999", http.StatusNotFound)
	getBody(t, srv.URL+"/v1/batch/b-999999", http.StatusNotFound)

	var names []string
	if err := json.Unmarshal(getBody(t, srv.URL+"/v1/workloads", http.StatusOK), &names); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		found = found || n == "pr"
	}
	if !found {
		t.Errorf("workloads listing %v misses pr", names)
	}

	// Traces are disabled on this stack and say so.
	var traces struct {
		Enabled bool              `json:"enabled"`
		Traces  []store.TraceInfo `json:"traces"`
	}
	if err := json.Unmarshal(getBody(t, srv.URL+"/v1/traces", http.StatusOK), &traces); err != nil {
		t.Fatal(err)
	}
	if traces.Enabled || traces.Traces == nil || len(traces.Traces) != 0 {
		t.Errorf("disabled trace registry doc = %+v", traces)
	}
}

// observability is the shared counter block asserted on /v1/stats,
// /healthz, and /jobs.
type observability struct {
	Status   string         `json:"status"`
	Workers  int            `json:"workers"`
	Queued   int            `json:"queued"`
	QueueCap int            `json:"queue_cap"`
	SimsRun  uint64         `json:"sims_run"`
	Rejected uint64         `json:"rejected"`
	Cache    map[string]any `json:"cache"`
}

// TestObservabilityEndpoints checks /healthz, /jobs, and /v1/stats
// expose queue depth, cache stats, sims-run, and rejected counters.
func TestObservabilityEndpoints(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{Workers: 3, QueueDepth: 5})

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`)
	st := decode[scheduler.JobStatus](t, resp)
	pollJobDone(t, srv.URL, st.ID)
	postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":1000}`).Body.Close()

	for _, path := range []string{"/healthz", "/v1/healthz"} {
		var h observability
		if err := json.Unmarshal(getBody(t, srv.URL+path, http.StatusOK), &h); err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" || h.Workers != 3 || h.QueueCap != 5 {
			t.Errorf("%s = %+v", path, h)
		}
		if h.SimsRun != 1 {
			t.Errorf("%s sims_run = %d, want 1", path, h.SimsRun)
		}
		if h.Cache["hits"] == nil || h.Cache["entries"] == nil {
			t.Errorf("%s cache block incomplete: %v", path, h.Cache)
		}
	}

	var jo struct {
		observability
		Jobs []scheduler.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(getBody(t, srv.URL+"/jobs", http.StatusOK), &jo); err != nil {
		t.Fatal(err)
	}
	if len(jo.Jobs) != 2 || jo.SimsRun != 1 {
		t.Errorf("/jobs overview: %d jobs, sims_run %d", len(jo.Jobs), jo.SimsRun)
	}

	var stats struct {
		observability
		Jobs      int                     `json:"jobs"`
		Batches   int                     `json:"batches"`
		JobStates map[scheduler.State]int `json:"job_states"`
	}
	if err := json.Unmarshal(getBody(t, srv.URL+"/v1/stats", http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != 2 || stats.JobStates[scheduler.StateDone] != 2 {
		t.Errorf("/v1/stats = %+v", stats)
	}
}

// TestQueueFullRetryAfter drives the server into backpressure and
// checks the 429 carries the adaptive Retry-After hint (the configured
// floor, with no completed-job durations to scale it).
func TestQueueFullRetryAfter(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{
		Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second,
	})

	// A long job pins the worker; poll until it is actually running.
	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":300000}`)
	long := decode[scheduler.JobStatus](t, resp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + long.ID)
		if err != nil {
			t.Fatal(err)
		}
		st := decode[scheduler.JobStatus](t, resp)
		if st.State == scheduler.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Fill the single queue slot, then overflow.
	postJSON(t, srv.URL+"/v1/jobs", `{"workload":"bfs","accesses":1000}`).Body.Close()
	resp = postJSON(t, srv.URL+"/v1/jobs", `{"workload":"cc","accesses":1000}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q (the floor: no duration samples yet)", got, "7")
	}

	// An oversized batch bounces with the same hint.
	resp = postJSON(t, srv.URL+"/v1/batch",
		`{"designs":["NDPExt","Nexus"],"workloads":["mv"],"base":{"accesses":1000}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow batch = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("batch Retry-After = %q, want %q", got, "7")
	}
}

// readSSE consumes one SSE stream, returning event types in order.
func readSSE(t *testing.T, resp *http.Response, stopAt func(string) bool) []string {
	t.Helper()
	defer resp.Body.Close()
	var types []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			types = append(types, ev)
			if stopAt(ev) {
				return types
			}
		}
	}
	return types
}

// TestSSEStreamsEpochEvents follows a job's event stream and checks the
// replay-then-follow contract delivers state, epoch, and terminal
// events over HTTP.
func TestSSEStreamsEpochEvents(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{Workers: 1, QueueDepth: 4})

	resp := postJSON(t, srv.URL+"/v1/jobs", `{"workload":"pr","accesses":5000,"epoch_cycles":50000}`)
	st := decode[scheduler.JobStatus](t, resp)

	stream, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	types := readSSE(t, stream, func(ev string) bool { return ev == "done" || ev == "failed" })
	var epochs int
	for _, ty := range types {
		if ty == "epoch" {
			epochs++
		}
	}
	if epochs == 0 || types[len(types)-1] != "done" {
		t.Errorf("stream = %v, want epoch events then done", types)
	}
}

// TestBatchHTTP submits a matrix over the wire, follows the multiplexed
// stream, and checks the canonical matrix document's cells are
// byte-identical to individually-fetched job results.
func TestBatchHTTP(t *testing.T) {
	_, srv := newTestStack(t, scheduler.Options{Workers: 4, QueueDepth: 16})

	body := `{"designs":["NDPExt","Nexus"],"workloads":["pr","bfs"],"base":{"seed":1,"accesses":1000}}`
	resp := postJSON(t, srv.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit = %d, want 202", resp.StatusCode)
	}
	bst := decode[scheduler.BatchStatus](t, resp)
	if bst.ID == "" || len(bst.Cells) != 4 {
		t.Fatalf("batch status = %+v", bst)
	}

	// Multiplexed SSE runs until the terminal "batch" event.
	stream, err := http.Get(srv.URL + "/v1/batch/" + bst.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	types := readSSE(t, stream, func(ev string) bool { return ev == "batch" })
	if len(types) == 0 || types[len(types)-1] != "batch" {
		t.Fatalf("batch stream = %v, want trailing batch event", types)
	}

	// Terminal now: status shows done, the matrix document renders.
	var final scheduler.BatchStatus
	if err := json.Unmarshal(getBody(t, srv.URL+"/v1/batch/"+bst.ID, http.StatusOK), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != scheduler.StateDone || final.Pending != 0 {
		t.Fatalf("final batch status = %+v", final)
	}
	matrix := getBody(t, srv.URL+"/v1/batch/"+bst.ID+"/result", http.StatusOK)
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Cells         []struct {
			Design   string          `json:"design"`
			Workload string          `json:"workload"`
			State    scheduler.State `json:"state"`
			Result   json.RawMessage `json:"result"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(matrix, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != 1 || len(doc.Cells) != 4 {
		t.Fatalf("matrix doc: schema %d, %d cells", doc.SchemaVersion, len(doc.Cells))
	}
	for _, cell := range doc.Cells {
		single := postJSON(t, srv.URL+"/v1/jobs",
			fmt.Sprintf(`{"design":%q,"workload":%q,"seed":1,"accesses":1000}`, cell.Design, cell.Workload))
		if single.StatusCode != http.StatusOK {
			t.Fatalf("cell %s/%s resubmit = %d, want 200 (cached)", cell.Design, cell.Workload, single.StatusCode)
		}
		js := decode[scheduler.JobStatus](t, single)
		if !bytes.Equal(compact(t, js.Result), compact(t, cell.Result)) {
			t.Errorf("cell %s/%s: matrix bytes differ from the single-submission document", cell.Design, cell.Workload)
		}
	}

	// The legacy /batch alias accepts the same body (fully cached now).
	resp = postJSON(t, srv.URL+"/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/batch alias = %d, want 200 for a fully-cached matrix", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed matrices are 400s.
	for _, bad := range []string{
		`{"workloads":["pr"]}`,
		`{"designs":["NDPExt"]}`,
		`{"designs":["NDPExt"],"workloads":["pr"],"base":{"workload":"bfs"}}`,
		`{"designs":["NDPExt"],"workloads":["pr"],"bogus":1}`,
	} {
		resp := postJSON(t, srv.URL+"/v1/batch", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q = %d, want 400", bad, resp.StatusCode)
		}
	}
}
