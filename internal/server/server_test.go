package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastSpec is a spec small enough to simulate in well under a second.
func fastSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "pr", Seed: seed, Accesses: 1000}
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
}

func newTestServer(t *testing.T, opt Options) *Server {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s
}

// TestDedupSixteenSubmissionsFourSims is the headline e2e property: 16
// concurrent submissions spanning 4 distinct configs must finish with
// exactly 4 simulations executed — every duplicate is served by the
// result cache or piggybacks on the identical in-flight job.
func TestDedupSixteenSubmissionsFourSims(t *testing.T) {
	s := newTestServer(t, Options{Workers: 4, QueueDepth: 32})
	defer s.Drain(context.Background())

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		mu  sync.Mutex
		ids []string
		wg  sync.WaitGroup
	)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := fastSpec(uint64(i%4) + 1)
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submit %d: got HTTP %d", i, resp.StatusCode)
				return
			}
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids = append(ids, st.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(ids) != 16 {
		t.Fatalf("accepted %d of 16 submissions", len(ids))
	}
	leaders := 0
	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		waitJob(t, j)
		st := j.Status()
		if st.State != StateDone {
			t.Errorf("job %s: state %s (err %q), want done", id, st.State, st.Error)
		}
		if len(st.Result) == 0 {
			t.Errorf("job %s: no result document", id)
		}
		if !st.CacheHit && !st.Deduped {
			leaders++
		}
	}
	if got := s.SimsRun(); got != 4 {
		t.Errorf("SimsRun = %d, want exactly 4", got)
	}
	if leaders != 4 {
		t.Errorf("%d jobs ran fresh (neither cache_hit nor deduped), want 4", leaders)
	}

	// Identical configs must produce byte-identical result documents.
	docs := map[uint64][]byte{}
	for _, id := range ids {
		j, _ := s.Job(id)
		st := j.Status()
		seed := j.Spec.Seed
		if prev, ok := docs[seed]; ok {
			if !bytes.Equal(prev, st.Result) {
				t.Errorf("seed %d: result documents differ across duplicates", seed)
			}
		} else {
			docs[seed] = st.Result
		}
	}
}

// TestQueueFullBackpressure fills the queue behind a deliberately held
// worker and checks both the engine error and the HTTP 429 + Retry-After
// surface.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s, err := New(Options{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.testJobStarted = func(j *Job) {
		started <- j
		<-release
	}
	s.Start()
	defer func() {
		s.Drain(context.Background())
	}()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First job occupies the only worker...
	a, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first job")
	}
	// ...second fills the single queue slot...
	b, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// ...third bounces.
	if _, err := s.Submit(fastSpec(3)); err != ErrQueueFull {
		t.Fatalf("Submit with full queue: err = %v, want ErrQueueFull", err)
	}
	body, _ := json.Marshal(fastSpec(4))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue over HTTP: got %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}
	if got := s.Rejected(); got != 2 {
		t.Errorf("Rejected = %d, want 2", got)
	}

	// A duplicate of a queued job piggybacks instead of bouncing, even
	// with the queue full.
	dup, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatalf("duplicate of queued job: %v", err)
	}
	if !dup.Status().Deduped {
		t.Error("duplicate of queued job did not piggyback")
	}

	close(release)
	for _, j := range []*Job{a, b, dup} {
		waitJob(t, j)
		if st := j.State(); st != StateDone {
			t.Errorf("job %s finished %s, want done", j.ID, st)
		}
	}
}

// TestSSEStreamsEpochEvents submits a job whose epoch length guarantees
// several boundaries and asserts the SSE stream delivers at least one
// epoch progress event with sane counters, then a terminal done event.
func TestSSEStreamsEpochEvents(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	defer s.Drain(context.Background())

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := fastSpec(1)
	spec.EpochCycles = 20_000 // short epochs: plenty of boundaries
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ev, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Body.Close()
	if ct := ev.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var epochs, terminals int
	var lastEpochData string
	sc := bufio.NewScanner(ev.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: epoch":
			epochs++
		case line == "event: done" || line == "event: failed" || line == "event: truncated":
			terminals++
		case strings.HasPrefix(line, "data: ") && epochs > 0 && lastEpochData == "":
			lastEpochData = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if epochs < 1 {
		t.Errorf("saw %d epoch events, want >= 1", epochs)
	}
	if terminals != 1 {
		t.Errorf("saw %d terminal events, want exactly 1", terminals)
	}
	var ep EpochEvent
	if err := json.Unmarshal([]byte(lastEpochData), &ep); err != nil {
		t.Fatalf("epoch event payload: %v (%s)", err, lastEpochData)
	}
	if ep.Counters.Accesses == 0 {
		t.Error("epoch event carries a zero-access counter snapshot")
	}

	// Late subscribers replay the full history: the same stream read
	// after completion still contains the epoch events.
	j, _ := s.Job(st.ID)
	waitJob(t, j)
	replay, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	var replayEpochs int
	sc = bufio.NewScanner(replay.Body)
	for sc.Scan() {
		if sc.Text() == "event: epoch" {
			replayEpochs++
		}
	}
	if replayEpochs != epochs {
		t.Errorf("replayed %d epoch events, live stream had %d", replayEpochs, epochs)
	}
}

// TestDrainNoLostJobs submits a batch, immediately drains, and checks
// every accepted job still reaches a terminal state.
func TestDrainNoLostJobs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, QueueDepth: 16})

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(fastSpec(uint64(i) + 1))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.State(); !st.terminal() {
			t.Errorf("job %s lost in drain: state %s", j.ID, st)
		}
	}
	if _, err := s.Submit(fastSpec(1)); err != ErrDraining {
		t.Errorf("Submit after drain: err = %v, want ErrDraining", err)
	}
}

// TestDrainCheckpointsRunningJob forces the drain deadline to expire
// while a large job is mid-flight: the simulation must be canceled,
// checkpointed as truncated with a partial result, and never cached.
func TestDrainCheckpointsRunningJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// Big enough to still be mid-flight when the drain fires; short
	// epochs so the first epoch event (our "simulation is live" signal)
	// arrives quickly.
	big := JobSpec{Workload: "pr", Seed: 1, Accesses: 150_000, EpochCycles: 20_000}
	j, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub := j.subscribe()
	defer unsub()
	deadline := time.After(60 * time.Second)
	for live := false; !live; {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("job finished before the drain could interrupt it")
			}
			live = ev.Type == "epoch"
		case <-deadline:
			t.Fatal("no epoch event; simulation never got going")
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already expired: checkpoint immediately
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	st := j.Status()
	if st.State != StateTruncated {
		t.Fatalf("checkpointed job state = %s (err %q), want truncated", st.State, st.Error)
	}
	var doc ResultDoc
	if err := json.Unmarshal(st.Result, &doc); err != nil {
		t.Fatalf("partial result document: %v", err)
	}
	if !doc.Truncated || doc.TruncateReason != "canceled" {
		t.Errorf("partial doc truncated=%v reason=%q, want canceled", doc.Truncated, doc.TruncateReason)
	}
	if doc.Accesses == 0 {
		t.Error("checkpoint carries zero completed accesses")
	}
	if n := s.CacheStats().Entries; n != 0 {
		t.Errorf("canceled result entered the cache (%d entries)", n)
	}
}

// TestPersistWarmRestart drains a server with a populated cache, then
// starts a fresh one from the same index file and checks an identical
// submission is served instantly from cache without simulating.
func TestPersistWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.json")

	s1 := newTestServer(t, Options{Workers: 2, QueueDepth: 8, CachePath: path})
	j, err := s1.Submit(fastSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache index not persisted: %v", err)
	}

	s2 := newTestServer(t, Options{Workers: 2, QueueDepth: 8, CachePath: path})
	defer s2.Drain(context.Background())
	j2, err := s2.Submit(fastSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2) // cache hits are terminal at submit; this is instant
	st := j2.Status()
	if !st.CacheHit {
		t.Error("warm-restarted server missed the persisted cache entry")
	}
	if st.State != StateDone {
		t.Errorf("state = %s, want done", st.State)
	}
	if got := s2.SimsRun(); got != 0 {
		t.Errorf("warm restart ran %d simulations, want 0", got)
	}
	if !bytes.Equal(st.Result, j.Status().Result) {
		t.Error("persisted result differs from the original document")
	}
}

// TestHTTPSurface covers the remaining read endpoints and error paths.
func TestHTTPSurface(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(v any) *http.Response {
		t.Helper()
		body, _ := json.Marshal(v)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Bad specs are 400 with a JSON error body.
	for _, bad := range []any{
		JobSpec{Workload: "no-such-workload"},
		JobSpec{Workload: "pr", Design: "warp-core"},
		JobSpec{Workload: "pr", Mem: "sram"},
		JobSpec{Workload: "pr", Faults: "flux-capacitor,rate=1"},
		map[string]any{"workload": "pr", "unknown_field": 1},
	} {
		resp := post(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %+v: got %d, want 400", bad, resp.StatusCode)
		}
		var ed errorDoc
		if err := json.NewDecoder(resp.Body).Decode(&ed); err != nil || ed.Error == "" {
			t.Errorf("bad spec %+v: error body missing (%v)", bad, err)
		}
		resp.Body.Close()
	}

	resp := post(fastSpec(1))
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	j, _ := s.Job(st.ID)
	waitJob(t, j)

	// Status and result endpoints.
	r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st2 JobStatus
	if err := json.NewDecoder(r2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st2.State != StateDone || len(st2.Result) == 0 {
		t.Errorf("status: state=%s result=%d bytes", st2.State, len(st2.Result))
	}
	r3, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var doc ResultDoc
	if err := json.NewDecoder(r3.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if doc.SchemaVersion != resultSchemaVersion || doc.Accesses == 0 {
		t.Errorf("result doc: schema=%d accesses=%d", doc.SchemaVersion, doc.Accesses)
	}

	// Unknown job is 404; stats and workloads respond.
	r4, _ := http.Get(ts.URL + "/v1/jobs/j-999999")
	if r4.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: got %d, want 404", r4.StatusCode)
	}
	r4.Body.Close()
	r5, _ := http.Get(ts.URL + "/v1/stats")
	var stats statsDoc
	if err := json.NewDecoder(r5.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if stats.Jobs < 1 || stats.SimsRun < 1 {
		t.Errorf("stats: %+v", stats)
	}
	r6, _ := http.Get(ts.URL + "/v1/workloads")
	var names []string
	if err := json.NewDecoder(r6.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	r6.Body.Close()
	if len(names) != 13 {
		t.Errorf("workloads: got %d names, want 13", len(names))
	}

	// Listings strip the result payload.
	r7, _ := http.Get(ts.URL + "/v1/jobs")
	var list []JobStatus
	if err := json.NewDecoder(r7.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r7.Body.Close()
	for _, item := range list {
		if len(item.Result) != 0 {
			t.Errorf("listing inlines result for %s", item.ID)
		}
	}
}

func TestJobSpecNormalizeAndKey(t *testing.T) {
	def := JobSpec{Workload: "pr"}.normalize()
	want := JobSpec{Workload: "pr", Design: "NDPExt", Mem: "hbm", Seed: 1,
		Accesses: 30000, Scale: 1, Reconfig: "full", FaultSeed: 1}
	if def != want {
		t.Errorf("normalize() = %+v, want %+v", def, want)
	}

	// An omitted field and its explicit default must address the same
	// cache entry.
	keyOf := func(js JobSpec) string {
		t.Helper()
		js = js.normalize()
		cfg, err := js.build(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return js.key(cfg, "").String()
	}
	if keyOf(JobSpec{Workload: "pr"}) != keyOf(want) {
		t.Error("defaulted and explicit specs hash differently")
	}
	base := keyOf(JobSpec{Workload: "pr"})
	for name, js := range map[string]JobSpec{
		"workload":  {Workload: "bfs"},
		"design":    {Workload: "pr", Design: "Nexus"},
		"mem":       {Workload: "pr", Mem: "hmc"},
		"seed":      {Workload: "pr", Seed: 2},
		"accesses":  {Workload: "pr", Accesses: 40000},
		"scale":     {Workload: "pr", Scale: 2},
		"reconfig":  {Workload: "pr", Reconfig: "partial"},
		"epoch":     {Workload: "pr", EpochCycles: 123456},
		"faults":    {Workload: "pr", Faults: "cxl-retry,rate=0.01"},
		"faultseed": {Workload: "pr", FaultSeed: 9},
		"maxcycles": {Workload: "pr", MaxCycles: 5_000_000},
	} {
		if keyOf(js) == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}

func TestEncodeResultDeterministic(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	defer s.Drain(context.Background())
	j, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	doc := j.Status().Result
	var parsed ResultDoc
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(parsed)
	if err != nil {
		t.Fatal(err)
	}
	// Round-tripping through the struct reproduces the exact bytes —
	// the document is canonical.
	if got, want := string(re), string(doc); got != want {
		// Metrics is map[string]any: numbers decode as float64, so a
		// full byte round-trip only holds without the metrics block.
		parsed.Metrics = nil
		var orig ResultDoc
		json.Unmarshal(doc, &orig)
		orig.Metrics = nil
		a, _ := json.Marshal(parsed)
		b, _ := json.Marshal(orig)
		if !bytes.Equal(a, b) {
			t.Errorf("result doc not canonical:\n got %s\nwant %s", got, want)
		}
	}
	if !bytes.Contains(doc, []byte(fmt.Sprintf(`"schema_version":%d`, resultSchemaVersion))) {
		t.Error("schema_version missing from canonical document")
	}
}
