package server

import (
	"encoding/json"
	"sync"
	"time"

	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/telemetry"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it (or it piggybacks on an
	// identical in-flight job).
	StateRunning State = "running"
	// StateDone: finished; the result document is available.
	StateDone State = "done"
	// StateFailed: the simulation errored; Error explains.
	StateFailed State = "failed"
	// StateTruncated: a watchdog or drain checkpoint cut the run short;
	// a partial result document is available.
	StateTruncated State = "truncated"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateTruncated
}

// Event is one progress record on a job's stream. Type is the SSE event
// name: "state" (lifecycle transition), "epoch" (an epoch boundary with
// a counter snapshot), "fault" (degraded-mode activity), or a terminal
// "done"/"failed"/"truncated" carrying the final status.
type Event struct {
	Type string
	Data any // JSON-marshalable payload
}

// EpochEvent is the payload of "epoch" progress events.
type EpochEvent struct {
	Epoch          int                `json:"epoch"`
	ActiveStreams  int                `json:"active_streams"`
	Reconfigured   bool               `json:"reconfigured"`
	SamplerCovered int                `json:"sampler_covered"`
	Degraded       bool               `json:"degraded,omitempty"`
	Counters       telemetry.Snapshot `json:"counters"`
}

// FaultEvent is the payload of "fault" progress events.
type FaultEvent struct {
	Epoch           int  `json:"epoch"`
	FailedUnits     int  `json:"failed_units"`
	RemappedStreams int  `json:"remapped_streams"`
	Degraded        bool `json:"degraded"`
}

// Job is one accepted submission. All mutable state is behind mu; the
// event history plus subscriber set implement replay-then-follow
// semantics for SSE.
type Job struct {
	ID   string
	Key  simcache.Key
	Spec JobSpec // normalized
	cfg  system.Config

	// leader, when non-nil, is the identical in-flight job this one
	// piggybacks on: it never occupies a queue slot or a worker, and
	// finishes when the leader finishes.
	leader *Job

	mu        sync.Mutex
	state     State
	errMsg    string
	cacheHit  bool // served straight from the result cache at submit
	deduped   bool // piggybacked on an identical in-flight job
	result    []byte
	created   time.Time
	started   time.Time
	finished  time.Time
	live      telemetry.Live
	history   []Event
	subs      map[chan Event]struct{}
	followers []*Job // jobs piggybacking on this one
	done      chan struct{}
}

func newJob(id string, key simcache.Key, spec JobSpec, cfg system.Config) *Job {
	return &Job{
		ID:      id,
		Key:     key,
		Spec:    spec,
		cfg:     cfg,
		state:   StateQueued,
		created: time.Now(),
		subs:    make(map[chan Event]struct{}),
		done:    make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// publish appends ev to the history and fans it out to subscribers.
// Slow subscribers are skipped rather than blocking the simulation
// goroutine; they still see every event via replay on reconnection.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns a channel that first replays the event history and
// then follows live events, plus an unsubscribe func. The channel is
// closed after the terminal event once the job finishes.
func (j *Job) subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	replay := make([]Event, len(j.history))
	copy(replay, j.history)
	ch := make(chan Event, len(replay)+64)
	for _, ev := range replay {
		ch <- ev
	}
	terminal := j.state.terminal()
	if !terminal {
		j.subs[ch] = struct{}{}
	}
	j.mu.Unlock()
	if terminal {
		close(ch)
		return ch, func() {}
	}
	var once sync.Once
	unsub := func() {
		once.Do(func() {
			j.mu.Lock()
			delete(j.subs, ch)
			j.mu.Unlock()
		})
	}
	return ch, unsub
}

// setRunning transitions queued -> running and announces it.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publish(Event{Type: "state", Data: map[string]string{"state": string(StateRunning)}})
}

// finish moves the job to a terminal state, records the outcome, emits
// the terminal event, closes subscriber channels, and releases waiters.
func (j *Job) finish(state State, result []byte, errMsg string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()

	j.publish(Event{Type: string(state), Data: j.Status()})
	j.mu.Lock()
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
	j.mu.Unlock()
	close(j.done)
}

// progressTarget is the job whose event stream carries this job's
// progress: the leader for piggybacked jobs, itself otherwise.
func (j *Job) progressTarget() *Job {
	if j.leader != nil {
		return j.leader
	}
	return j
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID         string              `json:"id"`
	Key        string              `json:"key"`
	State      State               `json:"state"`
	CacheHit   bool                `json:"cache_hit,omitempty"`
	Deduped    bool                `json:"deduped,omitempty"`
	Error      string              `json:"error,omitempty"`
	CreatedAt  time.Time           `json:"created_at"`
	StartedAt  *time.Time          `json:"started_at,omitempty"`
	FinishedAt *time.Time          `json:"finished_at,omitempty"`
	Progress   *telemetry.Snapshot `json:"progress,omitempty"`
	Spec       JobSpec             `json:"spec"`
	Result     json.RawMessage     `json:"result,omitempty"`
}

// Status snapshots the job for API responses.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:        j.ID,
		Key:       j.Key.String(),
		State:     j.state,
		CacheHit:  j.cacheHit,
		Deduped:   j.deduped,
		Error:     j.errMsg,
		CreatedAt: j.created,
		Spec:      j.Spec,
		Result:    json.RawMessage(j.result),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	j.mu.Unlock()
	if snap, ok := j.progressTarget().live.Load(); ok {
		st.Progress = &snap
	}
	return st
}
