package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ndpext/internal/workloads"
)

// Handler returns the HTTP API:
//
//	POST /v1/jobs              submit a JobSpec; 202 with the job status
//	                           (200 immediately when served from cache),
//	                           429 + Retry-After under backpressure,
//	                           503 while draining
//	GET  /v1/jobs              list all jobs (newest last)
//	GET  /v1/jobs/{id}         one job's status (result inlined when done)
//	GET  /v1/jobs/{id}/result  the raw canonical result document
//	GET  /v1/jobs/{id}/events  live progress as Server-Sent Events
//	GET  /v1/workloads         available workload generators
//	GET  /v1/stats             queue, cache, and dedup counters
//	GET  /v1/healthz           liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, workloads.Names())
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// errorDoc is the uniform error body.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorDoc{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opt.RetryAfter.Seconds())))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if job.State().terminal() {
		code = http.StatusOK // cache hit: already complete
	}
	writeJSON(w, code, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		st := j.Status()
		st.Result = nil // listings stay small; fetch results per job
		out[i] = st
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	st := job.Status()
	if len(st.Result) == 0 {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; no result yet", job.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(st.Result)
}

// handleEvents streams the job's progress as SSE: the full history is
// replayed first, then live events follow until the job finishes or the
// client disconnects. Piggybacked jobs stream their leader's progress.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, unsub := job.progressTarget().subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal event delivered; stream complete
			}
			data, err := json.Marshal(ev.Data)
			if err != nil {
				data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// statsDoc is the GET /v1/stats body.
type statsDoc struct {
	Workers    int            `json:"workers"`
	Queued     int            `json:"queued"`
	QueueCap   int            `json:"queue_cap"`
	Jobs       int            `json:"jobs"`
	SimsRun    uint64         `json:"sims_run"`
	Rejected   uint64         `json:"rejected"`
	Cache      map[string]any `json:"cache"`
	StatesById map[State]int  `json:"job_states"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, capn := s.QueueDepth()
	cs := s.CacheStats()
	states := make(map[State]int)
	for _, j := range s.Jobs() {
		states[j.State()]++
	}
	writeJSON(w, http.StatusOK, statsDoc{
		Workers:  s.opt.Workers,
		Queued:   queued,
		QueueCap: capn,
		Jobs:     totalJobs(states),
		SimsRun:  s.SimsRun(),
		Rejected: s.Rejected(),
		Cache: map[string]any{
			"hits": cs.Hits, "misses": cs.Misses, "dedups": cs.Dedups,
			"evictions": cs.Evictions, "expirations": cs.Expirations,
			"entries": cs.Entries,
		},
		StatesById: states,
	})
}

func totalJobs(states map[State]int) int {
	n := 0
	for _, c := range states {
		n += c
	}
	return n
}
