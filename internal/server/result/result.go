// Package result defines the canonical machine-readable result
// document shared by every consumer of a simulation's outcome: the
// serving stack's content-addressed store, the HTTP result endpoints,
// `ndpsim -json`, and the golden regression suite. The document is the
// byte-level contract — equal results encode to identical bytes — so
// this package must stay free of anything environment-dependent, and
// changes to the field set or ordering are schema changes.
package result

import (
	"encoding/json"

	"ndpext/internal/system"
	"ndpext/internal/telemetry"
)

// SchemaVersion tags the result document layout.
const SchemaVersion = 1

// Doc is the canonical machine-readable form of one simulation's
// outcome. Latencies are nanoseconds, energies picojoules.
type Doc struct {
	SchemaVersion int    `json:"schema_version"`
	Design        string `json:"design"`
	Workload      string `json:"workload"`

	MakespanNS  float64 `json:"makespan_ns"`
	Accesses    uint64  `json:"accesses"`
	L1Hits      uint64  `json:"l1_hits"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`

	CacheHitRate      float64 `json:"cache_hit_rate"`
	AvgAccessNS       float64 `json:"avg_access_ns"`
	AvgInterconnectNS float64 `json:"avg_interconnect_ns"`
	SLBHitRate        float64 `json:"slb_hit_rate,omitempty"`
	MetaHitRate       float64 `json:"meta_hit_rate,omitempty"`

	BreakdownNS Breakdown `json:"breakdown_ns"`
	EnergyPJ    Energy    `json:"energy_pj"`

	Reconfigs  int    `json:"reconfigs,omitempty"`
	Exceptions uint64 `json:"exceptions,omitempty"`

	// NDPExt-MAB summary (omitted for every other design, so existing
	// documents stay byte-identical): the live arm at end of run and
	// the bandit's switch count. Per-arm posteriors live under the
	// "adapt." prefix in Metrics.
	AdaptArm      string `json:"adapt_arm,omitempty"`
	AdaptSwitches int    `json:"adapt_switches,omitempty"`

	Truncated      bool   `json:"truncated,omitempty"`
	TruncateReason string `json:"truncate_reason,omitempty"`

	// Metrics is the run's full telemetry registry as a flat object
	// (dotted names, sorted keys). Absent for the Host design.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// Breakdown is the per-level latency attribution in nanoseconds,
// using the telemetry level names.
type Breakdown struct {
	Core      float64 `json:"core"`
	Meta      float64 `json:"meta"`
	IntraNoC  float64 `json:"intra-noc"`
	InterNoC  float64 `json:"inter-noc"`
	CacheDRAM float64 `json:"dram"`
	Extended  float64 `json:"extended"`
}

// Energy is the Fig. 6 energy decomposition in picojoules.
type Energy struct {
	Static  float64 `json:"static"`
	NDPDram float64 `json:"ndp_dram"`
	ExtDram float64 `json:"ext_dram"`
	NoC     float64 `json:"noc"`
	CXLLink float64 `json:"cxl_link"`
	SRAM    float64 `json:"sram"`
	Total   float64 `json:"total"`
}

// New flattens a run result into the canonical document.
func New(res *system.Result) Doc {
	doc := Doc{
		SchemaVersion: SchemaVersion,
		Design:        res.Design.String(),
		Workload:      res.Workload,

		MakespanNS:  res.Time.NS(),
		Accesses:    res.Accesses,
		L1Hits:      res.L1Hits,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,

		CacheHitRate:      res.CacheHitRate(),
		AvgAccessNS:       res.Breakdown.AvgAccessNS(),
		AvgInterconnectNS: res.AvgInterconnectNS(),
		SLBHitRate:        res.SLBHitRate,
		MetaHitRate:       res.MetaHitRate,

		BreakdownNS: Breakdown{
			Core:      res.Breakdown.Core.NS(),
			Meta:      res.Breakdown.Meta.NS(),
			IntraNoC:  res.Breakdown.IntraNoC.NS(),
			InterNoC:  res.Breakdown.InterNoC.NS(),
			CacheDRAM: res.Breakdown.CacheDRAM.NS(),
			Extended:  res.Breakdown.Extended.NS(),
		},
		EnergyPJ: Energy{
			Static:  res.Energy.StaticPJ,
			NDPDram: res.Energy.NDPDramPJ,
			ExtDram: res.Energy.ExtDramPJ,
			NoC:     res.Energy.NoCPJ,
			CXLLink: res.Energy.CXLLinkPJ,
			SRAM:    res.Energy.SRAMPJ,
			Total:   res.Energy.Total(),
		},

		Reconfigs:  res.Reconfigs,
		Exceptions: res.Exceptions,

		AdaptArm:      res.AdaptArm,
		AdaptSwitches: res.AdaptSwitches,

		Truncated:      res.Truncated,
		TruncateReason: res.TruncateReason,
	}
	if reg := res.Metrics(); reg != nil {
		doc.Metrics = make(map[string]any, len(reg.Names()))
		reg.Each(func(name string, v telemetry.Value) {
			switch v.Kind {
			case telemetry.KindUint:
				doc.Metrics[name] = v.U
			case telemetry.KindFloat:
				doc.Metrics[name] = v.F
			case telemetry.KindTime:
				doc.Metrics[name] = v.T.NS()
			}
		})
	}
	return doc
}

// Encode renders the canonical JSON result document for res: one
// object, no indentation, object keys in Go's deterministic order
// (struct fields in declaration order, map keys sorted). Equal results
// encode to identical bytes, which is what makes the document
// content-addressable and diff-able across runs.
func Encode(res *system.Result) ([]byte, error) {
	return json.Marshal(New(res))
}

// Truncated probes an encoded document for the truncated marker
// without decoding the whole thing — how a cached document's terminal
// state is classified.
func Truncated(doc []byte) bool {
	var probe struct {
		Truncated bool `json:"truncated"`
	}
	return json.Unmarshal(doc, &probe) == nil && probe.Truncated
}
