package result

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

func runSmall(t *testing.T) *system.Result {
	t.Helper()
	cfg := system.DefaultConfig(system.NDPExt)
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = 1000
	tr, err := gen(cfg.NumUnits(), 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := system.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEncodeDeterministic proves the document is canonical: encoding
// twice yields identical bytes, and round-tripping through the struct
// reproduces them (modulo the map-valued metrics block, whose numbers
// decode as float64).
func TestEncodeDeterministic(t *testing.T) {
	res := runSmall(t)
	doc, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Error("two encodings of the same result differ")
	}

	var parsed Doc
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatal(err)
	}
	re, err := json.Marshal(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, doc) {
		parsed.Metrics = nil
		var orig Doc
		json.Unmarshal(doc, &orig)
		orig.Metrics = nil
		a, _ := json.Marshal(parsed)
		b, _ := json.Marshal(orig)
		if !bytes.Equal(a, b) {
			t.Errorf("result doc not canonical:\n got %s\nwant %s", re, doc)
		}
	}
	if !bytes.Contains(doc, []byte(fmt.Sprintf(`"schema_version":%d`, SchemaVersion))) {
		t.Error("schema_version missing from canonical document")
	}
}

func TestTruncatedProbe(t *testing.T) {
	res := runSmall(t)
	doc, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if Truncated(doc) {
		t.Error("complete run probed as truncated")
	}
	res.Truncated = true
	res.TruncateReason = "test"
	doc, err = Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !Truncated(doc) {
		t.Error("truncated run not detected by probe")
	}
	if Truncated([]byte("not json")) {
		t.Error("garbage probed as truncated")
	}
}
