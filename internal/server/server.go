// Package server turns the simulator into shared infrastructure: an
// HTTP/JSON service that accepts simulation jobs, runs them on a
// bounded worker pool, deduplicates identical work (content-addressed
// result cache + submit-time piggybacking + singleflight), streams live
// progress over Server-Sent Events, and drains gracefully — finishing
// or checkpointing running jobs and persisting the cache index for warm
// restarts.
//
// Job lifecycle: queued -> running -> done | failed | truncated. A
// submission whose key is already cached completes instantly
// (cache_hit); one whose key is already queued/running piggybacks on
// that job (deduped) without consuming a queue slot. A full queue
// rejects with HTTP 429 and a Retry-After hint.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// Options configures a Server. Zero values take the documented defaults.
type Options struct {
	// Workers bounds concurrent simulations; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; default 64. A full
	// queue is backpressure: submissions get 429 + Retry-After.
	QueueDepth int
	// CacheEntries bounds the result cache; default 1024.
	CacheEntries int
	// CacheTTL expires cached results; default 0 (never).
	CacheTTL time.Duration
	// CachePath, when set, persists the cache index there on Drain and
	// warm-loads it in New.
	CachePath string
	// RetryAfter is the hint returned with 429; default 1s.
	RetryAfter time.Duration
	// MaxWall / MaxCycles are per-job watchdog defaults applied when a
	// spec does not set its own (0 disables).
	MaxWall   time.Duration
	MaxCycles int64
	// TraceDir enables trace-backed jobs: specs may name a trace file
	// (relative path, confined to this directory) to replay instead of
	// a generated workload. Empty disables trace jobs.
	TraceDir string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// Server is the simulation-as-a-service engine, independent of HTTP
// wiring (Handler attaches the routes; tests can drive it directly).
type Server struct {
	opt    Options
	cache  *simcache.Cache[[]byte]
	traces *simcache.Cache[*workloads.Trace]

	queue chan *Job

	mu        sync.Mutex
	accepting bool
	jobs      map[string]*Job
	order     []string               // submission order, for listing
	active    map[simcache.Key]*Job  // queued/running leaders by key
	nextID    int

	wg        sync.WaitGroup
	runCtx    context.Context    // canceled to checkpoint running sims
	runCancel context.CancelFunc

	simsRun  atomic.Uint64 // simulations actually executed
	rejected atomic.Uint64 // submissions bounced with 429

	// testJobStarted, when non-nil, is invoked at the top of runJob —
	// tests use it to hold a worker and fill the queue deterministically.
	testJobStarted func(*Job)
}

// New builds a server and warm-loads the cache index from
// Options.CachePath if present. Call Start to launch the workers.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	runCtx, runCancel := context.WithCancel(context.Background())
	s := &Server{
		opt:       opt,
		cache:     simcache.New[[]byte](opt.CacheEntries, opt.CacheTTL),
		traces:    simcache.New[*workloads.Trace](32, 0),
		queue:     make(chan *Job, opt.QueueDepth),
		accepting: true,
		jobs:      make(map[string]*Job),
		active:    make(map[simcache.Key]*Job),
		runCtx:    runCtx,
		runCancel: runCancel,
	}
	if opt.CachePath != "" {
		if _, err := simcache.LoadFile(s.cache, opt.CachePath); err != nil {
			runCancel()
			return nil, fmt.Errorf("server: warm-load cache: %w", err)
		}
	}
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.opt.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
}

// ErrQueueFull is returned by Submit when backpressure applies.
var ErrQueueFull = errors.New("server: job queue full")

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// Submit validates, keys, and admits one job. The fast paths — result
// already cached, or an identical job already in flight — never consume
// a queue slot; otherwise the job is enqueued or, when the queue is
// full, rejected with ErrQueueFull.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec = spec.normalize()
	cfg, err := spec.build(s.opt.MaxWall, s.opt.MaxCycles)
	if err != nil {
		return nil, err
	}
	var digest string
	if spec.Trace != "" {
		// Digest the trace now, at admission: the key must name the
		// bytes the job will replay, and a file swapped mid-queue must
		// not silently serve a stale cached result.
		path, err := s.resolveTrace(spec.Trace)
		if err != nil {
			return nil, err
		}
		digest, err = trace.DigestFile(path)
		if err != nil {
			return nil, fmt.Errorf("server: digesting trace %q: %w", spec.Trace, err)
		}
	}
	key := spec.key(cfg, digest)

	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return nil, ErrDraining
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j-%06d", s.nextID), key, spec, cfg)

	if doc, ok := s.cache.Get(key); ok {
		// Content-addressed hit: done before it ever queued.
		job.cacheHit = true
		s.register(job)
		job.finish(stateForDoc(doc), doc, "")
		return job, nil
	}
	if leader, ok := s.active[key]; ok {
		// Identical job already in flight: piggyback, costing nothing.
		job.leader = leader
		job.deduped = true
		s.register(job)
		leader.mu.Lock()
		leader.followers = append(leader.followers, job)
		leader.mu.Unlock()
		job.publish(Event{Type: "state", Data: map[string]string{
			"state": string(StateQueued), "piggyback_on": leader.ID}})
		return job, nil
	}
	select {
	case s.queue <- job:
	default:
		s.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.active[key] = job
	s.register(job)
	job.publish(Event{Type: "state", Data: map[string]string{"state": string(StateQueued)}})
	return job, nil
}

// register records the job for lookup/listing. Caller holds s.mu.
func (s *Server) register(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// SimsRun counts simulations actually executed (cache hits and
// piggybacked submissions excluded) — the denominator for verifying
// deduplication.
func (s *Server) SimsRun() uint64 { return s.simsRun.Load() }

// CacheStats exposes the result cache counters.
func (s *Server) CacheStats() simcache.Stats { return s.cache.Stats() }

// QueueDepth returns (queued, capacity).
func (s *Server) QueueDepth() (int, int) { return len(s.queue), cap(s.queue) }

// Rejected counts submissions bounced by backpressure.
func (s *Server) Rejected() uint64 { return s.rejected.Load() }

// errNotCacheable marks outcomes that must not enter the result cache:
// wall-clock truncation (nondeterministic) and drain checkpoints.
var errNotCacheable = errors.New("server: result not cacheable")

// runJob executes one leader job on the calling worker.
func (s *Server) runJob(job *Job) {
	if s.testJobStarted != nil {
		s.testJobStarted(job)
	}
	job.setRunning()

	doc, _, err := s.cache.Do(job.Key, func() ([]byte, error) {
		return s.simulate(job)
	})

	var state State
	var errMsg string
	switch {
	case err == nil:
		state = stateForDoc(doc)
	case errors.Is(err, errNotCacheable) || errors.Is(err, context.Canceled):
		// Checkpoint: a partial document exists, keep it with the job
		// even though it never enters the cache.
		if doc != nil {
			state = StateTruncated
		} else {
			state, errMsg = StateFailed, err.Error()
		}
	default:
		state, errMsg, doc = StateFailed, err.Error(), nil
	}

	// Release the key and collect piggybackers before finishing, so a
	// new submission of the same key either sees the cache entry or
	// starts fresh — never a finished "leader".
	s.mu.Lock()
	delete(s.active, job.Key)
	job.mu.Lock()
	followers := append([]*Job(nil), job.followers...)
	job.mu.Unlock()
	s.mu.Unlock()

	job.finish(state, doc, errMsg)
	for _, f := range followers {
		f.finish(state, doc, errMsg)
	}
}

// simulate runs the job's simulation, publishing progress events, and
// returns the canonical result document. Errors wrap errNotCacheable
// when the outcome is nondeterministic (wall truncation, cancellation).
func (s *Server) simulate(job *Job) ([]byte, error) {
	s.simsRun.Add(1)
	// Trace-backed jobs replay through a streaming source — memory stays
	// bounded at one decoded chunk per core however long the file is.
	// Generated workloads keep the materialized fast path.
	var (
		tr  *workloads.Trace
		src workloads.Source
	)
	if job.Spec.Trace != "" {
		path, err := s.resolveTrace(job.Spec.Trace)
		if err != nil {
			return nil, err
		}
		r, err := trace.OpenFile(path)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		if job.cfg.Design != system.Host && r.Cores() != job.cfg.NumUnits() {
			return nil, fmt.Errorf("server: trace %q has %d cores, machine has %d units",
				job.Spec.Trace, r.Cores(), job.cfg.NumUnits())
		}
		src, err = r.Source()
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		tr, err = s.trace(job.Spec)
		if err != nil {
			return nil, err
		}
	}
	cfg := job.cfg
	cfg.OnEpoch = func(ei system.EpochInfo) {
		job.live.Publish(ei.Counters)
		job.publish(Event{Type: "epoch", Data: EpochEvent{
			Epoch:          ei.Epoch,
			ActiveStreams:  ei.ActiveStreams,
			Reconfigured:   ei.Reconfigured,
			SamplerCovered: ei.SamplerCovered,
			Degraded:       ei.Degraded,
			Counters:       ei.Counters,
		}})
		if ei.Degraded || ei.RemappedStreams > 0 {
			job.publish(Event{Type: "fault", Data: FaultEvent{
				Epoch:           ei.Epoch,
				FailedUnits:     ei.FailedUnits,
				RemappedStreams: ei.RemappedStreams,
				Degraded:        ei.Degraded,
			}})
		}
	}
	var res *system.Result
	var err error
	if src != nil {
		res, err = system.RunSourceContext(s.runCtx, cfg, src)
	} else {
		res, err = system.RunContext(s.runCtx, cfg, tr)
	}
	if err != nil {
		if res == nil {
			return nil, err
		}
		// Drain checkpoint: encode the partial result but keep it out
		// of the cache.
		doc, encErr := EncodeResult(res)
		if encErr != nil {
			return nil, encErr
		}
		return doc, fmt.Errorf("%w: %w", errNotCacheable, err)
	}
	doc, err := EncodeResult(res)
	if err != nil {
		return nil, err
	}
	if res.Truncated && res.TruncateReason == "wall-clock limit exceeded" {
		// Wall truncation depends on machine speed; never cache it.
		return doc, fmt.Errorf("%w: %s", errNotCacheable, res.TruncateReason)
	}
	return doc, nil
}

// trace builds (or reuses) the workload trace for a spec. Distinct
// machine configs share traces when their workload parameters and unit
// counts agree; each use gets a Clone so runs stay independent.
func (s *Server) trace(spec JobSpec) (*workloads.Trace, error) {
	d, err := system.ParseDesign(spec.Design)
	if err != nil {
		return nil, err
	}
	cores := system.DefaultConfig(system.NDPExt).NumUnits()
	if d != system.Host {
		cores = system.DefaultConfig(d).NumUnits()
	}
	key := simcache.Sum(spec.workloadCanon(""), []byte(fmt.Sprintf("cores=%d", cores)))
	tr, _, err := s.traces.Do(key, func() (*workloads.Trace, error) {
		gen, err := workloads.Get(spec.Workload)
		if err != nil {
			return nil, err
		}
		sc := workloads.DefaultScale()
		sc.AccessesPerCore = spec.Accesses
		sc.Mult = spec.Scale
		return gen(cores, spec.Seed, sc)
	})
	if err != nil {
		return nil, err
	}
	return tr.Clone(), nil
}

// resolveTrace maps a spec's trace name to a file under Options.TraceDir,
// rejecting anything that could escape it (absolute paths, "..", empty
// names). The name is the API surface; the directory is the trust
// boundary.
func (s *Server) resolveTrace(name string) (string, error) {
	if s.opt.TraceDir == "" {
		return "", errors.New("server: trace jobs not enabled (no trace directory configured)")
	}
	if name == "" || !filepath.IsLocal(name) {
		return "", fmt.Errorf("server: trace name %q escapes the trace directory", name)
	}
	return filepath.Join(s.opt.TraceDir, name), nil
}

// stateForDoc distinguishes done from truncated for a (possibly cached)
// result document without decoding the whole thing.
func stateForDoc(doc []byte) State {
	var probe struct {
		Truncated bool `json:"truncated"`
	}
	if err := json.Unmarshal(doc, &probe); err == nil && probe.Truncated {
		return StateTruncated
	}
	return StateDone
}

// Drain gracefully shuts the engine down: stop accepting submissions,
// let the workers finish every queued and running job, then persist the
// cache index. If ctx expires first, running simulations are canceled —
// they checkpoint partial results and finish as truncated — and Drain
// still waits for the workers to wind down before persisting. No
// accepted job is ever lost: every one reaches a terminal state.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := !s.accepting
	s.accepting = false
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel() // checkpoint running sims
		<-done
	}
	s.runCancel()

	if s.opt.CachePath != "" {
		if err := simcache.SaveFile(s.cache, s.opt.CachePath); err != nil {
			return fmt.Errorf("server: persist cache: %w", err)
		}
	}
	return nil
}
