// Package chaos is a seeded fault injector for the ndpserve stack. It
// produces the failures the robustness layer claims to survive —
// panicking simulations, bit-flipped trace chunks, truncated trace
// files, corrupted warm-restart indexes — from a deterministic PRNG so
// every chaotic run is replayable from its seed.
//
// The injector lives in the server tree (not in a _test.go file) so
// both the chaos suite and any future soak/fuzz driver can reuse it,
// but it is pure fault machinery: it must never import net/http or the
// transport layer (enforced by the layering test).
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/trace"
)

// PoisonSeed marks a JobSpec as poison: the injector's Hook panics
// when a simulation with this seed reaches a worker. The value is
// arbitrary but stable, so tests and drivers agree on it.
const PoisonSeed = 0xC4A05

// Poison returns a minimal valid spec the Hook will panic on. Distinct
// accesses values keep distinct cache keys, so n poison jobs trigger n
// independent panics instead of piggybacking on one.
func Poison(i int) scheduler.JobSpec {
	return scheduler.JobSpec{Workload: "pr", Seed: PoisonSeed, Accesses: 1000 + i}
}

// IsPoison reports whether the Hook would panic on spec.
func IsPoison(spec scheduler.JobSpec) bool { return spec.Seed == PoisonSeed }

// Injector is a deterministic source of faults. All methods are safe
// for concurrent use; the PRNG is serialized under a mutex so a fixed
// seed plus a fixed call sequence yields a fixed fault sequence.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	panics atomic.Uint64
}

// NewInjector returns an injector whose faults are fully determined by
// seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Hook is a scheduler.Options.SimHook: it panics inside the worker's
// panic-recovery scope whenever a poison spec is about to simulate.
func (in *Injector) Hook(spec scheduler.JobSpec) {
	if IsPoison(spec) {
		in.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected simulation panic (accesses=%d)", spec.Accesses))
	}
}

// PanicsInjected returns how many panics the Hook has thrown; the suite
// checks it against the scheduler's PanicsRecovered counter.
func (in *Injector) PanicsInjected() uint64 { return in.panics.Load() }

// Intn and Shuffle expose the injector's PRNG so scenario generation
// shares the same deterministic stream as the faults.
func (in *Injector) Intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

func (in *Injector) Shuffle(n int, swap func(i, j int)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng.Shuffle(n, swap)
}

// CorruptTrace flips one pseudo-random bit inside the payload of the
// trace's first chunk, leaving the header and index intact: the file
// still opens and admits, then fails its CRC mid-replay — the hardest
// corruption to handle, because a job is already running on the bytes.
func (in *Injector) CorruptTrace(path string) error {
	r, err := trace.OpenFile(path)
	if err != nil {
		return fmt.Errorf("chaos: open %s before corrupting it: %w", path, err)
	}
	// Stay within the first ~60 payload bytes: past the ~15-byte chunk
	// header, but well inside even a minimal chunk.
	off := r.ChunkFileOffset(0) + 15 + int64(in.Intn(45))
	r.Close()
	return in.flipBit(path, off)
}

// TruncateTrace cuts the tail off a trace file. The chunk index lives
// in the footer, so the loss is detected at open time — the admission-
// path counterpart to CorruptTrace's mid-replay failure.
func (in *Injector) TruncateTrace(path string) error {
	return in.truncate(path, 16) // keep at least the magic
}

// CorruptIndex truncates a warm-restart index mid-document, which no
// JSON decoder can miss. (A single flipped bit inside an entry's value
// could go undetected — the index format is plain JSON — so truncation
// is the deterministic way to model a torn write.)
func (in *Injector) CorruptIndex(path string) error {
	return in.truncate(path, 1)
}

// KillPlan is a cluster kill-one-peer scenario drawn from the
// injector's deterministic PRNG: which peer dies and how many terminal
// batch cells to wait for first, so the kill lands mid-batch rather
// than before or after the interesting window.
type KillPlan struct {
	// Victim is the index of the peer to kill.
	Victim int
	// AfterCells is how many cells should be terminal before the kill.
	AfterCells int
}

// PlanKill picks a victim among peers other than acceptor (the node
// clients talk to — killing it would exercise the client, not the
// cluster's re-routing) and a kill point strictly inside a batch of
// cells. Like every injector method it is deterministic in the seed
// and the call sequence, so a failing cluster chaos run replays
// exactly. The plan stays pure data: this package must never import
// net/http, so actually stopping the victim's server is the caller's
// job.
func (in *Injector) PlanKill(peers, acceptor, cells int) (KillPlan, error) {
	if peers < 2 {
		return KillPlan{}, fmt.Errorf("chaos: kill plan needs >= 2 peers, got %d", peers)
	}
	if acceptor < 0 || acceptor >= peers {
		return KillPlan{}, fmt.Errorf("chaos: acceptor %d outside [0,%d)", acceptor, peers)
	}
	victim := in.Intn(peers - 1)
	if victim >= acceptor {
		victim++ // skip the acceptor, keeping the draw uniform
	}
	after := 0
	if cells > 1 {
		after = in.Intn(cells - 1) // in [0, cells-1): never after the last cell
	}
	return KillPlan{Victim: victim, AfterCells: after}, nil
}

// flipBit XORs one pseudo-random bit of the byte at off.
func (in *Injector) flipBit(path string, off int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off >= int64(len(raw)) {
		return fmt.Errorf("chaos: flip offset %d outside %s (%d bytes)", off, path, len(raw))
	}
	raw[off] ^= 1 << in.Intn(8)
	return os.WriteFile(path, raw, 0o644)
}

// truncate cuts the file to a pseudo-random size in [keepAtLeast,
// size-2], guaranteeing at least two bytes are lost (a JSON index ends
// in "}\n", and cutting only the newline would leave it valid).
func (in *Injector) truncate(path string, keepAtLeast int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	max := fi.Size() - 2
	if max < keepAtLeast {
		return fmt.Errorf("chaos: %s too small to truncate (%d bytes)", path, fi.Size())
	}
	keep := keepAtLeast + int64(in.Intn(int(max-keepAtLeast)+1))
	return os.Truncate(path, keep)
}
