package chaos

import "testing"

// TestPlanKillDeterministic: the same seed yields the same plan, and
// different seeds cover the victim space.
func TestPlanKillDeterministic(t *testing.T) {
	a, err := NewInjector(7).PlanKill(3, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(7).PlanKill(3, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced %+v and %+v", a, b)
	}
}

// TestPlanKillNeverPicksAcceptor: across many seeds the victim is never
// the accepting node and the kill point is never past the last cell.
func TestPlanKillNeverPicksAcceptor(t *testing.T) {
	const peers, cells = 5, 8
	victims := make(map[int]bool)
	for seed := int64(0); seed < 200; seed++ {
		for acceptor := 0; acceptor < peers; acceptor++ {
			plan, err := NewInjector(seed).PlanKill(peers, acceptor, cells)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Victim == acceptor {
				t.Fatalf("seed %d: victim is the acceptor %d", seed, acceptor)
			}
			if plan.Victim < 0 || plan.Victim >= peers {
				t.Fatalf("seed %d: victim %d outside [0,%d)", seed, plan.Victim, peers)
			}
			if plan.AfterCells < 0 || plan.AfterCells >= cells-1 {
				t.Fatalf("seed %d: kill after %d cells of %d — not mid-batch", seed, plan.AfterCells, cells)
			}
			victims[plan.Victim] = true
		}
	}
	if len(victims) != peers {
		t.Errorf("200 seeds hit only victims %v of %d peers", victims, peers)
	}
}

// TestPlanKillValidation: degenerate clusters are rejected.
func TestPlanKillValidation(t *testing.T) {
	in := NewInjector(1)
	if _, err := in.PlanKill(1, 0, 4); err == nil {
		t.Error("single-peer kill plan accepted")
	}
	if _, err := in.PlanKill(3, 3, 4); err == nil {
		t.Error("out-of-range acceptor accepted")
	}
	if _, err := in.PlanKill(3, -1, 4); err == nil {
		t.Error("negative acceptor accepted")
	}
	// A one-cell batch still plans (kill before the only cell).
	plan, err := in.PlanKill(2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AfterCells != 0 || plan.Victim != 1 {
		t.Errorf("two-peer one-cell plan = %+v", plan)
	}
}
