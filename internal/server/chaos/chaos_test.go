package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

func waitJob(t *testing.T, j *scheduler.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
}

func writeChaosTrace(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	// Tiny footprint: the suite writes dozens of traces across 20
	// parallel scenarios; a full-scale graph build per trace would
	// dominate the run.
	sc := workloads.TinyScale()
	sc.AccessesPerCore = 200
	tr, err := gen(system.DefaultConfig(system.NDPExt).NumUnits(), seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestChaosSeeds runs the full fault menu — panicking simulations, a
// corrupt or truncated trace, a stalled event subscriber, and a
// corrupted warm-restart index — across 20 deterministic seeds. The
// invariants under every seed: the process survives, every job reaches
// a terminal state with a diagnostic, recovered-fault counters match
// injected faults exactly, and the result documents of unaffected jobs
// are byte-identical to a fault-free golden run.
func TestChaosSeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosScenario(t, seed)
		})
	}
}

func runChaosScenario(t *testing.T, seed int64) {
	in := NewInjector(seed)
	traceDir := t.TempDir()
	indexPath := filepath.Join(t.TempDir(), "index.json")

	writeChaosTrace(t, traceDir, "good.ndptrc", uint64(seed)+1)
	badPath := writeChaosTrace(t, traceDir, "bad.ndptrc", uint64(seed)+2)
	// Even seeds: bit-flip a chunk payload (fails mid-replay, after
	// admission). Odd seeds: truncate the file (fails at open).
	var corrupt func(string) error = in.CorruptTrace
	if seed%2 == 1 {
		corrupt = in.TruncateTrace
	}
	if err := corrupt(badPath); err != nil {
		t.Fatal(err)
	}

	// The scenario's job mix, drawn from the injector's PRNG so the
	// whole run replays from the seed.
	var good []scheduler.JobSpec
	for i := 0; i < 3; i++ {
		good = append(good, scheduler.JobSpec{
			Workload: "pr", Seed: uint64(in.Intn(1000) + 1), Accesses: 1000, Scale: 0.12,
		})
	}
	good = append(good, scheduler.JobSpec{Trace: "good.ndptrc"})
	nPoison := 1 + in.Intn(2)

	// Golden run: the same good specs on a pristine stack.
	golden := map[string][]byte{}
	{
		st, err := store.Open(store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := scheduler.New(st, store.NewTraceRegistry(traceDir),
			scheduler.Options{Workers: 2, QueueDepth: 64})
		s.Start()
		for _, spec := range good {
			j, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			waitJob(t, j)
			if j.State() != scheduler.StateDone {
				t.Fatalf("golden run failed: %s (%s)", j.State(), j.Status().Error)
			}
			golden[j.Key.String()] = j.Result()
		}
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// Chaos run: good jobs, poison jobs, and the corrupt trace,
	// submitted in PRNG order, with a subscriber that never reads.
	st, err := store.Open(store.Options{Path: indexPath})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduler.New(st, store.NewTraceRegistry(traceDir),
		scheduler.Options{Workers: 2, QueueDepth: 64, SimHook: in.Hook})
	s.Start()

	specs := append([]scheduler.JobSpec(nil), good...)
	for i := 0; i < nPoison; i++ {
		specs = append(specs, Poison(i))
	}
	specs = append(specs, scheduler.JobSpec{Trace: "bad.ndptrc"})
	in.Shuffle(len(specs), func(i, j int) { specs[i], specs[j] = specs[j], specs[i] })

	jobs := make([]*scheduler.Job, len(specs))
	for i, spec := range specs {
		if jobs[i], err = s.Submit(spec); err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
	}
	// The stalled SSE reader: subscribe to the first job and never
	// drain the channel. Publishes must drop, not block the worker.
	_, unsubscribe := jobs[0].Subscribe()
	defer unsubscribe()

	for _, j := range jobs {
		waitJob(t, j)
	}

	for i, j := range jobs {
		spec := specs[i]
		switch {
		case IsPoison(spec):
			if j.State() != scheduler.StateFailed {
				t.Errorf("poison job state = %s, want failed", j.State())
			}
			errMsg := j.Status().Error
			if !strings.Contains(errMsg, "chaos: injected simulation panic") ||
				!strings.Contains(errMsg, "goroutine") {
				t.Errorf("poison diagnostic lost panic value or stack: %q", errMsg)
			}
			if st.Contains(j.Key) {
				t.Error("panic outcome entered the result store")
			}
		case spec.Trace == "bad.ndptrc":
			if j.State() != scheduler.StateFailed {
				t.Errorf("corrupt-trace job state = %s, want failed (err %q)",
					j.State(), j.Status().Error)
			}
			if j.Result() != nil {
				t.Error("corrupt-trace job kept a result built on bad bytes")
			}
		default:
			if j.State() != scheduler.StateDone {
				t.Errorf("good job %+v state = %s (err %q)", spec, j.State(), j.Status().Error)
				continue
			}
			want, ok := golden[j.Key.String()]
			if !ok {
				t.Errorf("good job %+v has no golden counterpart", spec)
			} else if !bytes.Equal(j.Result(), want) {
				t.Errorf("good job %+v result diverged under chaos", spec)
			}
		}
	}

	// Every injected fault was recovered, and nothing else fired.
	if got, want := s.PanicsRecovered(), in.PanicsInjected(); got != want {
		t.Errorf("PanicsRecovered = %d, PanicsInjected = %d", got, want)
	}
	if got := s.TraceQuarantines(); got != 1 {
		t.Errorf("TraceQuarantines = %d, want 1", got)
	}
	if got := s.IndexQuarantines(); got != 0 {
		t.Errorf("IndexQuarantines = %d, want 0 (index was healthy)", got)
	}

	// The quarantine sticks: resubmitting the corrupt trace is rejected
	// at admission now.
	if _, err := s.Submit(scheduler.JobSpec{Trace: "bad.ndptrc"}); !errors.Is(err, store.ErrTraceQuarantined) {
		t.Errorf("resubmitted corrupt trace err = %v, want ErrTraceQuarantined", err)
	}

	// Clean shutdown after all that: drain persists the index, and a
	// warm restart serves the survivors from it.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	warm, err := store.Open(store.Options{Path: indexPath})
	if err != nil {
		t.Fatalf("warm reopen: %v", err)
	}
	for i, j := range jobs {
		if IsPoison(specs[i]) || specs[i].Trace == "bad.ndptrc" {
			if warm.Contains(j.Key) {
				t.Errorf("failed job %+v persisted a result", specs[i])
			}
			continue
		}
		if !warm.Contains(j.Key) {
			t.Errorf("warm restart lost good result %s", j.Key)
		}
	}

	// Final injection: tear the persisted index and reopen. The store
	// must quarantine the file and come up cold, never refuse to start.
	if err := in.CorruptIndex(indexPath); err != nil {
		t.Fatal(err)
	}
	cold, err := store.Open(store.Options{Path: indexPath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open over corrupt index: %v", err)
	}
	if got := cold.IndexQuarantines(); got != 1 {
		t.Errorf("IndexQuarantines after corrupt index = %d, want 1", got)
	}
	qp := cold.QuarantinedPath()
	if qp == "" {
		t.Fatal("no quarantined path recorded")
	}
	if _, err := os.Stat(qp); err != nil {
		t.Errorf("quarantined index not preserved: %v", err)
	}
	for _, j := range jobs {
		if cold.Contains(j.Key) {
			t.Error("cold store after quarantine still serves old results")
		}
	}
}

// TestDrainUnderFire: SIGTERM arrives (modeled as Drain with an
// already-expired context) while one worker is mid-panic, another is
// mid-simulation, a third job is still queued, and a subscriber has
// stalled its event channel. Drain must still return, every accepted
// job must reach a terminal state, the interrupted simulation must
// checkpoint a partial result, and the index must be persisted.
func TestDrainUnderFire(t *testing.T) {
	in := NewInjector(42)
	indexPath := filepath.Join(t.TempDir(), "index.json")
	st, err := store.Open(store.Options{Path: indexPath})
	if err != nil {
		t.Fatal(err)
	}

	hold := make(chan struct{})
	s := scheduler.New(st, nil, scheduler.Options{
		Workers: 2, QueueDepth: 16,
		SimHook: func(spec scheduler.JobSpec) {
			if IsPoison(spec) {
				<-hold // panic only once the drain is underway
			}
			in.Hook(spec)
		},
	})
	s.Start()

	poison, err := s.Submit(Poison(0))
	if err != nil {
		t.Fatal(err)
	}
	// Long enough to still be mid-simulation when the drain hits, with
	// short epochs so the cancellation check point comes around fast.
	long, err := s.Submit(scheduler.JobSpec{
		Workload: "pr", Seed: 3, Accesses: 2_000_000, Scale: 0.12, EpochCycles: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(scheduler.JobSpec{Workload: "pr", Seed: 4, Accesses: 1000, Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	// Stall a subscriber on the long job so its progress events pile up
	// undrained through the shutdown.
	_, unsubscribe := long.Subscribe()
	defer unsubscribe()

	// A second, live subscriber waits for the first epoch event: proof
	// the long job is inside its event loop, where a cancellation
	// checkpoints a partial result instead of aborting cleanly.
	events, stopWatching := long.Subscribe()
	for ev := range events {
		if ev.Type == "epoch" {
			break
		}
	}
	stopWatching()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the SIGTERM moment: no grace at all
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()
	close(hold) // the panic lands while Drain is waiting on the workers

	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain under fire: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain wedged under fire")
	}

	for _, j := range []*scheduler.Job{poison, long, queued} {
		if !j.State().Terminal() {
			t.Errorf("job %s not terminal after drain: %s", j.ID, j.State())
		}
	}
	if poison.State() != scheduler.StateFailed {
		t.Errorf("poison state = %s, want failed", poison.State())
	}
	if !strings.Contains(poison.Status().Error, "chaos: injected simulation panic") {
		t.Errorf("poison diagnostic = %q", poison.Status().Error)
	}
	if long.State() != scheduler.StateTruncated {
		t.Errorf("interrupted job state = %s, want truncated (err %q)",
			long.State(), long.Status().Error)
	} else if long.Result() == nil {
		t.Error("interrupted job checkpointed no partial result")
	}
	if got, want := s.PanicsRecovered(), in.PanicsInjected(); got != want || got != 1 {
		t.Errorf("PanicsRecovered = %d, PanicsInjected = %d, want 1/1", got, want)
	}

	// The index survived the storm: reopening it warm must succeed.
	if _, err := os.Stat(indexPath); err != nil {
		t.Fatalf("index not persisted by drain: %v", err)
	}
	if _, err := store.Open(store.Options{Path: indexPath}); err != nil {
		t.Fatalf("warm reopen after drain under fire: %v", err)
	}
}
