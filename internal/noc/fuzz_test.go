package noc

import (
	"testing"
)

func TestNewCheckedRejectsBadConfigs(t *testing.T) {
	if _, err := NewChecked(DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.StacksX = 0 },
		func(c *Config) { c.UnitsY = -3 },
		func(c *Config) { c.InterGBps = 0 },
		func(c *Config) { c.IntraGBps = -1 },
		func(c *Config) { c.StacksX = 1 << 20 },
		func(c *Config) { c.StacksX, c.StacksY, c.UnitsX, c.UnitsY = 1<<10, 1<<10, 1<<10, 1<<10 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := NewChecked(cfg); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config without panicking")
		}
	}()
	cfg := DefaultConfig()
	cfg.UnitsX = 0
	New(cfg)
}

// FuzzConfigValidate checks that topology validation never panics, that
// accepted configs have a sane unit count, and that NewChecked
// constructs a network exactly when Validate accepts.
func FuzzConfigValidate(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.StacksX, d.StacksY, d.UnitsX, d.UnitsY, d.IntraGBps, d.InterGBps)
	f.Add(0, 0, 0, 0, 0.0, 0.0)
	f.Add(-1, 2, 1<<30, 2, 64.0, 32.0)
	f.Add(1<<11, 1<<11, 1<<11, 1<<11, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, sx, sy, ux, uy int, intra, inter float64) {
		cfg := DefaultConfig()
		cfg.StacksX, cfg.StacksY = sx, sy
		cfg.UnitsX, cfg.UnitsY = ux, uy
		cfg.IntraGBps, cfg.InterGBps = intra, inter
		err := cfg.Validate()
		if err == nil {
			if n := cfg.NumUnits(); n <= 0 || n > 1<<20 {
				t.Fatalf("accepted config has %d units: %+v", n, cfg)
			}
		}
		net, cerr := NewChecked(cfg)
		if (err == nil) != (cerr == nil) {
			t.Fatalf("Validate err=%v but NewChecked err=%v", err, cerr)
		}
		if cerr == nil && net == nil {
			t.Fatal("NewChecked returned nil network without error")
		}
	})
}
