package noc

import (
	"testing"
	"testing/quick"

	"ndpext/internal/sim"
)

func small() Config {
	c := DefaultConfig()
	return c
}

func TestDefaultConfigTopology(t *testing.T) {
	c := DefaultConfig()
	if c.NumStacks() != 8 {
		t.Fatalf("stacks = %d, want 8 (4x2)", c.NumStacks())
	}
	if c.UnitsPerStack() != 16 {
		t.Fatalf("units/stack = %d, want 16 (4x4)", c.UnitsPerStack())
	}
	if c.NumUnits() != 128 {
		t.Fatalf("units = %d, want 128", c.NumUnits())
	}
	if c.IntraHopLat != sim.FromNS(1.5) || c.InterHopLat != sim.FromNS(10) {
		t.Fatalf("hop latencies %v/%v, want 1.5ns/10ns", c.IntraHopLat, c.InterHopLat)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.StacksX = 0
	if bad.Validate() == nil {
		t.Fatal("zero StacksX validated")
	}
	bad = DefaultConfig()
	bad.InterGBps = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth validated")
	}
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config failed validation")
	}
}

func TestHopsSameUnit(t *testing.T) {
	n := New(small())
	if i, e := n.Hops(5, 5); i != 0 || e != 0 {
		t.Fatalf("self hops = %d/%d", i, e)
	}
}

func TestHopsSameStack(t *testing.T) {
	n := New(small())
	// Units 0 (0,0) and 15 (3,3) of stack 0: manhattan 6, no inter hops.
	intra, inter := n.Hops(0, 15)
	if intra != 6 || inter != 0 {
		t.Fatalf("hops(0,15) = %d/%d, want 6/0", intra, inter)
	}
}

func TestHopsAcrossStacks(t *testing.T) {
	n := New(small())
	// Unit 0 is (0,0) in stack 0 at stack-grid (0,0); unit 16 is (0,0) in
	// stack 1 at stack-grid (1,0). One inter hop; intra = exit distance
	// from (0,0) to +X edge (3 hops) + entry distance from -X edge to
	// (0,0) (0 hops).
	intra, inter := n.Hops(0, 16)
	if inter != 1 {
		t.Fatalf("inter hops = %d, want 1", inter)
	}
	if intra != 3 {
		t.Fatalf("intra hops = %d, want 3", intra)
	}
}

func TestHopsSymmetryProperty(t *testing.T) {
	n := New(small())
	f := func(a, b uint8) bool {
		u := int(a) % n.NumUnits()
		v := int(b) % n.NumUnits()
		i1, e1 := n.Hops(u, v)
		i2, e2 := n.Hops(v, u)
		// XY routing gives symmetric inter hops. Intra hops may differ
		// between the two directions (the exit/entry edges depend on the
		// XY leg order) but must stay within the mesh diameter.
		diam := n.cfg.UnitsX + n.cfg.UnitsY - 2
		return e1 == e2 && i1 >= 0 && i2 >= 0 && i1 <= 2*diam && i2 <= 2*diam
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteLatencyComposition(t *testing.T) {
	n := New(small())
	cfg := n.Config()
	tr := n.Route(0, 0, 15, 64) // same stack, 6 intra hops
	wantIntra := 6*cfg.IntraHopLat + sim.FromNS(64/cfg.IntraGBps)
	if tr.IntraDelay != wantIntra || tr.InterDelay != 0 {
		t.Fatalf("intra=%v inter=%v, want intra=%v inter=0", tr.IntraDelay, tr.InterDelay, wantIntra)
	}
	if tr.Arrive != wantIntra {
		t.Fatalf("arrive = %v, want %v", tr.Arrive, wantIntra)
	}
}

func TestRouteInterStackContention(t *testing.T) {
	n := New(small())
	// Two messages over the same inter-stack link back to back: the second
	// queues behind the first's serialization.
	tr1 := n.Route(0, 0, 16, 6400)
	tr2 := n.Route(0, 0, 16, 6400)
	if tr2.Arrive <= tr1.Arrive {
		t.Fatalf("second message (%v) did not queue behind first (%v)", tr2.Arrive, tr1.Arrive)
	}
	// Reverse direction has its own link: no queueing against forward traffic.
	n.Reset()
	n.Route(0, 0, 16, 6400)
	rev := n.Route(0, 16, 0, 6400)
	fwd2 := n.Route(0, 0, 16, 6400)
	if rev.InterDelay >= fwd2.InterDelay {
		t.Fatalf("reverse-direction message queued behind forward traffic (rev %v, queued fwd %v)", rev.InterDelay, fwd2.InterDelay)
	}
}

func TestRouteSelfIsFree(t *testing.T) {
	n := New(small())
	tr := n.Route(42, 7, 7, 64)
	if tr.Arrive != 42 || tr.EnergyPJ != 0 || tr.IntraHops != 0 || tr.InterHops != 0 {
		t.Fatalf("self route not free: %+v", tr)
	}
}

func TestRouteEnergyScalesWithHops(t *testing.T) {
	n := New(small())
	near := n.Route(0, 0, 1, 64) // 1 intra hop
	n.Reset()
	far := n.Route(0, 0, 127, 64) // many hops incl. inter
	if far.EnergyPJ <= near.EnergyPJ {
		t.Fatalf("far energy %v <= near energy %v", far.EnergyPJ, near.EnergyPJ)
	}
}

func TestBaseLatencyMatchesUnloadedRoute(t *testing.T) {
	n := New(small())
	for _, pair := range [][2]int{{0, 15}, {0, 16}, {3, 127}, {10, 10}} {
		want := n.BaseLatency(pair[0], pair[1], 64)
		got := n.Route(0, pair[0], pair[1], 64).Arrive
		if got != want {
			t.Fatalf("route(%d,%d) unloaded = %v, BaseLatency = %v", pair[0], pair[1], got, want)
		}
		n.Reset()
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := New(small())
	n.Route(0, 0, 16, 64)
	n.Route(0, 16, 0, 64)
	s := n.Stats()
	if s.Messages != 2 {
		t.Fatalf("messages = %d", s.Messages)
	}
	if s.InterHops != 2 {
		t.Fatalf("inter hops = %d, want 2", s.InterHops)
	}
	if s.EnergyPJ <= 0 {
		t.Fatal("no energy recorded")
	}
	n.Reset()
	if s2 := n.Stats(); s2.Messages != 0 {
		t.Fatal("Reset did not clear stats")
	}
}

func TestInterStackPathMultiHop(t *testing.T) {
	n := New(small())
	// Stack 0 (grid 0,0) to stack 7 (grid 3,1): 3 X hops + 1 Y hop = 4.
	u0 := 0
	u7 := 7 * 16
	_, inter := n.Hops(u0, u7)
	if inter != 4 {
		t.Fatalf("inter hops = %d, want 4", inter)
	}
	tr := n.Route(0, u0, u7, 64)
	if tr.InterHops != 4 {
		t.Fatalf("routed inter hops = %d, want 4", tr.InterHops)
	}
	if tr.InterDelay < 4*n.Config().InterHopLat {
		t.Fatalf("inter delay %v below 4 hop latencies", tr.InterDelay)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestRouteCXLUnloaded(t *testing.T) {
	n := New(small())
	cfg := n.Config()
	// Unit 0 is at (0,0): the controller-facing (-Y) edge is 0 hops away.
	tr := n.RouteCXL(0, 0, 64, true)
	want := cfg.InterHopLat + sim.FromNS(64/cfg.InterGBps)
	if tr.Arrive != want {
		t.Fatalf("edge unit to controller = %v, want %v", tr.Arrive, want)
	}
	if tr.InterHops != 1 {
		t.Fatalf("controller link hops = %d, want 1", tr.InterHops)
	}
	if tr.Arrive != n.BaseCXLLatency(0, 64) {
		t.Fatalf("unloaded RouteCXL %v != BaseCXLLatency %v", tr.Arrive, n.BaseCXLLatency(0, 64))
	}
	// A unit deeper in the mesh pays intra hops first.
	deep := 12 // (0,3) in stack 0: 3 hops to the -Y edge
	trDeep := n.RouteCXL(0, deep, 64, true)
	if trDeep.IntraHops != 3 {
		t.Fatalf("deep unit intra hops = %d, want 3", trDeep.IntraHops)
	}
	if trDeep.Arrive <= tr.Arrive {
		t.Fatal("deep unit should take longer to reach the controller")
	}
}

func TestRouteCXLPerStackLinksIndependent(t *testing.T) {
	n := New(small())
	// Saturate stack 0's controller link; stack 1 must be unaffected.
	for i := 0; i < 50; i++ {
		n.RouteCXL(0, 0, 4096, true)
	}
	loaded := n.RouteCXL(0, 0, 4096, true)
	other := n.RouteCXL(0, 16, 4096, true) // unit 16 = stack 1
	if other.InterDelay >= loaded.InterDelay {
		t.Fatalf("stack 1's controller link (%v) queued behind stack 0's (%v)",
			other.InterDelay, loaded.InterDelay)
	}
}

func TestRouteCXLDirectionsIndependent(t *testing.T) {
	n := New(small())
	for i := 0; i < 50; i++ {
		n.RouteCXL(0, 0, 4096, true) // toward the controller
	}
	back := n.RouteCXL(0, 0, 4096, false) // from the controller
	if back.InterDelay > n.Config().InterHopLat+sim.FromNS(4096/n.Config().InterGBps) {
		t.Fatalf("return direction queued behind forward traffic: %v", back.InterDelay)
	}
}

func TestRouteCXLEnergyCharged(t *testing.T) {
	n := New(small())
	tr := n.RouteCXL(0, 5, 128, true)
	if tr.EnergyPJ <= 0 {
		t.Fatal("no energy charged for controller route")
	}
	if n.Stats().EnergyPJ != tr.EnergyPJ {
		t.Fatal("stats energy disagrees with transit energy")
	}
	n.Reset()
	if n.Stats().Messages != 0 {
		t.Fatal("Reset did not clear CXL route stats")
	}
}

// Property: wormhole pipelining means a multi-hop unloaded transfer costs
// hops*hopLat + one serialization, never hops*(hopLat+ser).
func TestWormholePipelineProperty(t *testing.T) {
	n := New(small())
	f := func(a, b uint8, sz uint16) bool {
		u, v := int(a)%n.NumUnits(), int(b)%n.NumUnits()
		bytes := 1 + int(sz)%4096
		n.Reset()
		tr := n.Route(0, u, v, bytes)
		intra, inter := n.Hops(u, v)
		cfg := n.Config()
		upper := sim.Time(intra)*cfg.IntraHopLat + sim.Time(inter)*cfg.InterHopLat +
			sim.FromNS(float64(bytes)/cfg.IntraGBps) + sim.FromNS(float64(bytes)/cfg.InterGBps) +
			2*sim.Nanosecond // rounding slack
		return tr.Arrive <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
