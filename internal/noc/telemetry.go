package noc

import "ndpext/internal/telemetry"

// ReportTelemetry publishes the network's counters into the registry
// under the given prefix (e.g. "noc").
func (n *Network) ReportTelemetry(r *telemetry.Registry, prefix string) {
	r.PutUint(prefix+".messages", n.stats.Messages)
	r.PutUint(prefix+".intra_hops", n.stats.IntraHops)
	r.PutUint(prefix+".inter_hops", n.stats.InterHops)
	r.PutFloat(prefix+".energy_pj", n.stats.EnergyPJ)
	r.PutTime(prefix+".intra_delay", n.stats.IntraDelay)
	r.PutTime(prefix+".inter_delay", n.stats.InterDelay)
}
