// Package noc models the interconnect of the NDP system: a mesh of NDP
// units inside each 3D stack (intra-stack network) and a mesh of stacks
// connected by off-chip links (inter-stack network), following the
// paper's Fig. 1 and Table II.
//
// Messages are routed XY within the stack grid and XY within the unit
// mesh. The inter-stack links are the system bottleneck (32 GB/s per
// direction, 10 ns/hop), so they are modelled as contended resources
// with busy-until reservation; the intra-stack mesh is modelled as
// latency plus serialization without queueing (its aggregate bandwidth
// is far higher, and the paper identifies the inter-stack links as the
// binding constraint). Messages that transit an intermediate stack are
// assumed to bypass its unit mesh on the logic-die routers.
package noc

import (
	"fmt"

	"ndpext/internal/fault"
	"ndpext/internal/sim"
)

// Config describes the interconnect topology and physical parameters.
type Config struct {
	StacksX, StacksY int // inter-stack mesh dimensions
	UnitsX, UnitsY   int // intra-stack unit mesh dimensions

	IntraHopLat   sim.Time // per-hop latency inside a stack
	InterHopLat   sim.Time // per-hop latency between stacks
	IntraGBps     float64  // intra-stack link bandwidth (serialization only)
	InterGBps     float64  // inter-stack link bandwidth per direction (contended)
	IntraPJPerBit float64
	InterPJPerBit float64
}

// DefaultConfig returns the Table II interconnect: a 4×2 inter-stack mesh
// of stacks, each with a 4×4 unit mesh; 1.5 ns intra hops at 0.4 pJ/bit;
// 10 ns inter hops at 32 GB/s per direction and 4 pJ/bit.
func DefaultConfig() Config {
	return Config{
		StacksX: 4, StacksY: 2,
		UnitsX: 4, UnitsY: 4,
		IntraHopLat: sim.FromNS(1.5), InterHopLat: sim.FromNS(10),
		IntraGBps: 64, InterGBps: 32,
		IntraPJPerBit: 0.4, InterPJPerBit: 4,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.StacksX <= 0 || c.StacksY <= 0 || c.UnitsX <= 0 || c.UnitsY <= 0 {
		return fmt.Errorf("noc: topology dimensions must be positive: %+v", c)
	}
	// Bound the topology so a corrupt config cannot demand an absurd
	// allocation (and the unit count cannot overflow int).
	const maxDim = 1 << 12
	if c.StacksX > maxDim || c.StacksY > maxDim || c.UnitsX > maxDim || c.UnitsY > maxDim {
		return fmt.Errorf("noc: topology dimension exceeds %d: %+v", maxDim, c)
	}
	if units := int64(c.StacksX) * int64(c.StacksY) * int64(c.UnitsX) * int64(c.UnitsY); units > 1<<20 {
		return fmt.Errorf("noc: %d units exceeds the supported 2^20", units)
	}
	if c.InterGBps <= 0 || c.IntraGBps <= 0 {
		return fmt.Errorf("noc: bandwidths must be positive")
	}
	return nil
}

// NumStacks returns the stack count.
func (c Config) NumStacks() int { return c.StacksX * c.StacksY }

// UnitsPerStack returns the unit count per stack.
func (c Config) UnitsPerStack() int { return c.UnitsX * c.UnitsY }

// NumUnits returns the total NDP unit count.
func (c Config) NumUnits() int { return c.NumStacks() * c.UnitsPerStack() }

// Transit describes the outcome of routing one message.
type Transit struct {
	Arrive     sim.Time // completion time at the destination
	IntraDelay sim.Time // time attributable to the intra-stack network
	InterDelay sim.Time // time attributable to inter-stack links (incl. queueing)
	IntraHops  int
	InterHops  int
	EnergyPJ   float64
}

// Stats aggregates network activity.
type Stats struct {
	Messages   uint64
	IntraHops  uint64
	InterHops  uint64
	EnergyPJ   float64
	IntraDelay sim.Time
	InterDelay sim.Time
}

// Network is the interconnect instance. It is not safe for concurrent use.
type Network struct {
	cfg Config
	// interLink[s][d] is the directed link leaving stack s toward
	// direction d (0:+X, 1:-X, 2:+Y, 3:-Y). Links to outside the grid
	// are present but unused.
	interLink [][]sim.Resource
	// cxlLink[s][dir] is stack s's dedicated link to the central CXL
	// controller (paper Fig. 1), dir 0 = toward the controller,
	// 1 = back. Extended-memory traffic uses these instead of crossing
	// the stack mesh.
	cxlLink [][2]sim.Resource
	inj     *fault.Injector
	stats   Stats
}

// NewChecked builds a network from cfg, returning an error on invalid
// configuration.
func NewChecked(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg}
	n.interLink = make([][]sim.Resource, cfg.NumStacks())
	for i := range n.interLink {
		n.interLink[i] = make([]sim.Resource, 4)
	}
	n.cxlLink = make([][2]sim.Resource, cfg.NumStacks())
	return n, nil
}

// New builds a network from cfg. It panics if cfg is invalid (topology is
// construction-time configuration, not runtime input).
func New(cfg Config) *Network {
	n, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// SetFaults attaches a fault injector whose noc-flap clauses delay
// inter-stack hops; nil (the default) disables injection.
func (n *Network) SetFaults(inj *fault.Injector) { n.inj = inj }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// NumUnits returns the total NDP unit count.
func (n *Network) NumUnits() int { return n.cfg.NumUnits() }

// StackOf returns the stack index containing unit u.
func (n *Network) StackOf(u int) int { return u / n.cfg.UnitsPerStack() }

// unitPos returns the (x, y) position of unit u within its stack.
func (n *Network) unitPos(u int) (x, y int) {
	local := u % n.cfg.UnitsPerStack()
	return local % n.cfg.UnitsX, local / n.cfg.UnitsX
}

// stackPos returns the (x, y) position of stack s in the stack grid.
func (n *Network) stackPos(s int) (x, y int) {
	return s % n.cfg.StacksX, s / n.cfg.StacksX
}

// Hops returns the intra- and inter-stack hop counts from unit `from` to
// unit `to` under XY routing.
func (n *Network) Hops(from, to int) (intra, inter int) {
	if from == to {
		return 0, 0
	}
	fs, ts := n.StackOf(from), n.StackOf(to)
	fx, fy := n.unitPos(from)
	tx, ty := n.unitPos(to)
	if fs == ts {
		return abs(fx-tx) + abs(fy-ty), 0
	}
	fsx, fsy := n.stackPos(fs)
	tsx, tsy := n.stackPos(ts)
	inter = abs(fsx-tsx) + abs(fsy-tsy)
	// Exit the source stack toward the first XY direction, enter the
	// destination stack from the last direction; intra hops are the
	// source unit's distance to its exit edge plus the entry edge's
	// distance to the destination unit.
	intra = n.edgeDistance(fx, fy, dirOut(fsx, fsy, tsx, tsy)) +
		n.edgeDistance(tx, ty, dirIn(fsx, fsy, tsx, tsy))
	return intra, inter
}

// dirOut is the first XY direction taken from stack (fx,fy) to (tx,ty).
func dirOut(fx, fy, tx, ty int) int {
	switch {
	case tx > fx:
		return 0 // +X
	case tx < fx:
		return 1 // -X
	case ty > fy:
		return 2 // +Y
	default:
		return 3 // -Y
	}
}

// dirIn is the direction from which the message enters the destination
// stack (the last XY leg: Y if it moved in Y, else X).
func dirIn(fx, fy, tx, ty int) int {
	switch {
	case ty > fy:
		return 3 // arrived moving +Y, so entered from the -Y edge
	case ty < fy:
		return 2
	case tx > fx:
		return 1 // arrived moving +X, entered from the -X edge
	default:
		return 0
	}
}

// edgeDistance is the hop count from position (x, y) to the stack edge
// facing direction d.
func (n *Network) edgeDistance(x, y, d int) int {
	switch d {
	case 0:
		return n.cfg.UnitsX - 1 - x
	case 1:
		return x
	case 2:
		return n.cfg.UnitsY - 1 - y
	default:
		return y
	}
}

// BaseLatency returns the unloaded latency from unit `from` to `to` for a
// message of the given size, ignoring contention. The placement policy
// uses this when computing attenuation factors.
func (n *Network) BaseLatency(from, to int, bytes int) sim.Time {
	intra, inter := n.Hops(from, to)
	t := sim.Time(intra)*n.cfg.IntraHopLat + sim.Time(inter)*n.cfg.InterHopLat
	if intra > 0 {
		t += sim.FromNS(float64(bytes) / n.cfg.IntraGBps)
	}
	if inter > 0 {
		t += sim.FromNS(float64(bytes) / n.cfg.InterGBps)
	}
	return t
}

// Route delivers a message of size bytes from unit `from` to unit `to`,
// starting at time t, reserving inter-stack link bandwidth along the way.
func (n *Network) Route(t sim.Time, from, to int, bytes int) Transit {
	var tr Transit
	tr.Arrive = t
	if from == to {
		return tr
	}
	intra, inter := n.Hops(from, to)
	tr.IntraHops, tr.InterHops = intra, inter

	// Intra-stack: latency + serialization, no queueing.
	if intra > 0 {
		d := sim.Time(intra)*n.cfg.IntraHopLat + sim.FromNS(float64(bytes)/n.cfg.IntraGBps)
		tr.IntraDelay = d
		tr.Arrive += d
		tr.EnergyPJ += float64(bytes*8) * n.cfg.IntraPJPerBit * float64(intra)
	}

	// Inter-stack: walk the XY stack path, reserving each directed link's
	// bandwidth. Transfers are wormhole-pipelined: the head flit advances
	// one hop latency after winning each link, and the tail (full
	// serialization time) is paid once at the destination.
	if inter > 0 {
		ser := sim.FromNS(float64(bytes) / n.cfg.InterGBps)
		fs, ts := n.StackOf(from), n.StackOf(to)
		sx, sy := n.stackPos(fs)
		tx, ty := n.stackPos(ts)
		before := tr.Arrive
		head := tr.Arrive
		for sx != tx || sy != ty {
			d := dirOut(sx, sy, tx, ty)
			s := sy*n.cfg.StacksX + sx
			start, _ := n.interLink[s][d].Acquire(head, ser)
			head = start + n.cfg.InterHopLat
			if n.inj != nil {
				head += n.inj.NoCFlapDelay(s, d, start)
			}
			switch d {
			case 0:
				sx++
			case 1:
				sx--
			case 2:
				sy++
			case 3:
				sy--
			}
		}
		tr.Arrive = head + ser
		tr.InterDelay = tr.Arrive - before
		tr.EnergyPJ += float64(bytes*8) * n.cfg.InterPJPerBit * float64(inter)
	}

	n.stats.Messages++
	n.stats.IntraHops += uint64(intra)
	n.stats.InterHops += uint64(inter)
	n.stats.EnergyPJ += tr.EnergyPJ
	n.stats.IntraDelay += tr.IntraDelay
	n.stats.InterDelay += tr.InterDelay
	return tr
}

// RouteCXL carries a message between a unit and the central CXL
// controller (toCXL selects the direction): an intra-stack leg from the
// unit to the stack's controller-facing edge, then the stack's dedicated
// controller link (contended, inter-stack class).
func (n *Network) RouteCXL(t sim.Time, unit int, bytes int, toCXL bool) Transit {
	var tr Transit
	tr.Arrive = t
	s := n.StackOf(unit)
	x, y := n.unitPos(unit)
	intra := n.edgeDistance(x, y, 3) // controller-facing (-Y) edge
	tr.IntraHops = intra
	if intra > 0 {
		d := sim.Time(intra)*n.cfg.IntraHopLat + sim.FromNS(float64(bytes)/n.cfg.IntraGBps)
		tr.IntraDelay = d
		tr.Arrive += d
		tr.EnergyPJ += float64(bytes*8) * n.cfg.IntraPJPerBit * float64(intra)
	}
	dir := 0
	if !toCXL {
		dir = 1
	}
	ser := sim.FromNS(float64(bytes) / n.cfg.InterGBps)
	start, _ := n.cxlLink[s][dir].Acquire(tr.Arrive, ser)
	before := tr.Arrive
	tr.Arrive = start + n.cfg.InterHopLat + ser
	tr.InterHops = 1
	tr.InterDelay = tr.Arrive - before
	tr.EnergyPJ += float64(bytes*8) * n.cfg.InterPJPerBit

	n.stats.Messages++
	n.stats.IntraHops += uint64(intra)
	n.stats.InterHops++
	n.stats.EnergyPJ += tr.EnergyPJ
	n.stats.IntraDelay += tr.IntraDelay
	n.stats.InterDelay += tr.InterDelay
	return tr
}

// BaseCXLLatency is the unloaded RouteCXL latency from the given unit.
func (n *Network) BaseCXLLatency(unit, bytes int) sim.Time {
	x, y := n.unitPos(unit)
	intra := n.edgeDistance(x, y, 3)
	t := sim.Time(intra)*n.cfg.IntraHopLat + n.cfg.InterHopLat +
		sim.FromNS(float64(bytes)/n.cfg.InterGBps)
	if intra > 0 {
		t += sim.FromNS(float64(bytes) / n.cfg.IntraGBps)
	}
	return t
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// Reset clears link reservations and statistics.
func (n *Network) Reset() {
	for s := range n.interLink {
		for d := range n.interLink[s] {
			n.interLink[s][d].Reset()
		}
	}
	for s := range n.cxlLink {
		n.cxlLink[s][0].Reset()
		n.cxlLink[s][1].Reset()
	}
	n.stats = Stats{}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
