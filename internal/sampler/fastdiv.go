package sampler

import "math/bits"

// fastDiv computes exact quotient and remainder by a fixed divisor using
// a precomputed magic multiplier (Granlund & Montgomery's invariant
// integer division, the branchfull u64 scheme libdivide popularized).
// The sampler's Observe loop divides one hash by 64 different capacities
// per observation; hardware 64-bit division is the dominant cost there,
// and the multiply-shift form is several times cheaper with bit-exact
// results (guarded by TestFastDivExact).
type fastDiv struct {
	d     uint64
	magic uint64
	shift uint8
	add   bool // quotient needs the (x-q)>>1+q correction step
	pow2  bool // divisor is a power of two: plain mask/shift
}

// newFastDiv prepares a divider for d (d >= 1).
func newFastDiv(d uint64) fastDiv {
	f := fastDiv{d: d}
	if d&(d-1) == 0 {
		f.pow2 = true
		f.shift = uint8(bits.TrailingZeros64(d))
		return f
	}
	fl2 := uint8(63 - bits.LeadingZeros64(d))
	// proposedM = floor(2^(64+fl2) / d); 2^fl2 < d, so Div64 is in range.
	proposedM, rem := bits.Div64(uint64(1)<<fl2, 0, d)
	e := d - rem
	if e < uint64(1)<<fl2 {
		f.shift = fl2
	} else {
		// The magic needs 65 bits; double it and round, and compensate
		// with the add-and-halve step at division time.
		proposedM += proposedM
		twiceRem := rem + rem
		if twiceRem >= d || twiceRem < rem {
			proposedM++
		}
		f.shift = fl2
		f.add = true
	}
	f.magic = proposedM + 1
	return f
}

// mod returns x % d.
func (f fastDiv) mod(x uint64) uint64 {
	_, r := f.divmod(x)
	return r
}

// divmod returns (x / d, x % d).
func (f fastDiv) divmod(x uint64) (q, r uint64) {
	if f.pow2 {
		return x >> f.shift, x & (f.d - 1)
	}
	q, _ = bits.Mul64(f.magic, x)
	if f.add {
		q = ((x-q)>>1 + q) >> f.shift
	} else {
		q >>= f.shift
	}
	return q, x - q*f.d
}
