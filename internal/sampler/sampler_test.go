package sampler

import (
	"math"
	"testing"

	"ndpext/internal/sim"
)

func cfg() Config {
	return DefaultConfig(8 << 20) // 8 MB per-unit DRAM at model scale
}

func TestDefaultConfigMatchesPaperShape(t *testing.T) {
	c := DefaultConfig(256 << 20)
	if c.CapacityPoints != 64 || c.SampleSets != 32 || c.SamplersPerUnit != 4 {
		t.Fatalf("c/k/S = %d/%d/%d, want 64/32/4", c.CapacityPoints, c.SampleSets, c.SamplersPerUnit)
	}
	if c.MinBytes != 32<<10 || c.MaxBytes != 256<<20 {
		t.Fatalf("range [%d, %d], want [32 kB, 256 MB]", c.MinBytes, c.MaxBytes)
	}
	if c.StorageBytes() != 8<<10 {
		t.Fatalf("sampler storage = %d, want 8 kB", c.StorageBytes())
	}
	// Geometric per-step factor ~1.16 for the paper range.
	ratio := math.Pow(float64(c.MaxBytes)/float64(c.MinBytes), 1/float64(c.CapacityPoints-1))
	if ratio < 1.15 || ratio > 1.17 {
		t.Fatalf("per-step factor = %.3f, want ~1.16", ratio)
	}
}

func TestValidate(t *testing.T) {
	bad := cfg()
	bad.CapacityPoints = 1
	if bad.Validate() == nil {
		t.Fatal("1 capacity point validated")
	}
	bad = cfg()
	bad.MaxBytes = bad.MinBytes - 1
	if bad.Validate() == nil {
		t.Fatal("inverted range validated")
	}
	if cfg().Validate() != nil {
		t.Fatal("good config rejected")
	}
}

func TestCurveMonotonicityForReuseWorkload(t *testing.T) {
	// A cyclic scan over a working set that fits in the larger monitored
	// capacities but not the smaller ones: miss rate must (weakly)
	// decrease with capacity.
	s := New(cfg(), 64)
	const workingSet = 8192 // items x 64 B = 512 kB working set
	rng := sim.NewRNG(1)
	for i := 0; i < 400000; i++ {
		s.Observe(uint64(rng.Intn(workingSet)))
	}
	c := s.Curve()
	// Allow small sampling noise: compare smoothed neighbours.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].MissRate > c.Points[i-1].MissRate+0.15 {
			t.Fatalf("miss rate increased sharply with capacity: %.3f@%d -> %.3f@%d",
				c.Points[i-1].MissRate, c.Points[i-1].Bytes, c.Points[i].MissRate, c.Points[i].Bytes)
		}
	}
	// Full capacity (8 MB) holds the 512 kB working set: near-zero misses.
	if mr := c.MissRateAt(8 << 20); mr > 0.1 {
		t.Fatalf("miss rate at full capacity = %.3f, want near 0", mr)
	}
	// Tiny capacity misses nearly always on a uniform working set.
	if mr := c.MissRateAt(2048); mr < 0.5 {
		t.Fatalf("miss rate at 2 kB = %.3f, want high", mr)
	}
}

func TestCurveCapturesZipfSkew(t *testing.T) {
	// A skewed workload hits even at small capacity (the hot head fits).
	s := New(cfg(), 64)
	rng := sim.NewRNG(2)
	z := sim.NewZipf(rng, 1<<16, 1.2)
	for i := 0; i < 300000; i++ {
		s.Observe(uint64(z.Next()))
	}
	c := s.Curve()
	small := c.MissRateAt(64 << 10)
	large := c.MissRateAt(4 << 20)
	if small < large {
		t.Fatalf("small capacity (%.3f) outperformed large (%.3f)", small, large)
	}
	if small > 0.9 {
		t.Fatalf("Zipf workload at 64 kB missed %.3f of accesses; the hot set should fit", small)
	}
}

func TestInterpolationBounds(t *testing.T) {
	c := Curve{
		ItemBytes: 64,
		Accesses:  1000,
		Points: []CurvePoint{
			{Bytes: 1024, MissRate: 0.8},
			{Bytes: 4096, MissRate: 0.2},
		},
	}
	if c.MissRateAt(0) != 1 {
		t.Fatal("zero capacity must miss")
	}
	if c.MissRateAt(512) != 0.8 {
		t.Fatal("below-range clamp failed")
	}
	if c.MissRateAt(1<<30) != 0.2 {
		t.Fatal("above-range clamp failed")
	}
	mid := c.MissRateAt(2048)
	if mid <= 0.2 || mid >= 0.8 {
		t.Fatalf("interpolated value %.3f outside (0.2, 0.8)", mid)
	}
	if got := c.MissesAt(4096); got != 200 {
		t.Fatalf("MissesAt = %v, want 200", got)
	}
}

func TestEmptyCurveAlwaysMisses(t *testing.T) {
	var c Curve
	if c.MissRateAt(1<<20) != 1 {
		t.Fatal("empty curve should be pessimistic")
	}
}

func TestFlatCurve(t *testing.T) {
	c := FlatCurve(64, 500)
	if c.MissRateAt(1<<20) != 1 || c.Accesses != 500 {
		t.Fatalf("flat curve wrong: %+v", c)
	}
}

func TestSamplerReset(t *testing.T) {
	s := New(cfg(), 64)
	for i := 0; i < 1000; i++ {
		s.Observe(uint64(i))
	}
	if s.Accesses() != 1000 {
		t.Fatalf("accesses = %d", s.Accesses())
	}
	s.Reset()
	if s.Accesses() != 0 {
		t.Fatal("Reset kept the access count")
	}
	c := s.Curve()
	for _, p := range c.Points {
		if p.Sampled != 0 {
			t.Fatal("Reset kept sampled counts")
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	run := func() Curve {
		s := New(cfg(), 64)
		rng := sim.NewRNG(7)
		for i := 0; i < 50000; i++ {
			s.Observe(uint64(rng.Intn(10000)))
		}
		return s.Curve()
	}
	a, b := run(), run()
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("nondeterministic curve at point %d", i)
		}
	}
}

func TestFewerSampleSetsStillApproximate(t *testing.T) {
	// Fig. 9(d): k has little effect. Compare k=32 and k=8 curves on the
	// same trace; they should agree within sampling noise at the capacity
	// where the working set fits.
	curveWithK := func(k int) Curve {
		c := cfg()
		c.SampleSets = k
		s := New(c, 64)
		rng := sim.NewRNG(3)
		for i := 0; i < 400000; i++ {
			s.Observe(uint64(rng.Intn(4096))) // 256 kB working set
		}
		return s.Curve()
	}
	c32 := curveWithK(32)
	c8 := curveWithK(8)
	for _, capB := range []int64{64 << 10, 1 << 20, 8 << 20} {
		d := math.Abs(c32.MissRateAt(capB) - c8.MissRateAt(capB))
		if d > 0.15 {
			t.Fatalf("k=8 and k=32 disagree by %.3f at %d bytes", d, capB)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad config": func() { New(Config{}, 64) },
		"zero item":  func() { New(cfg(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
