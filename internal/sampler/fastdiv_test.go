package sampler

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestFastDivExact checks the magic-multiplier remainder against the
// hardware % across divisor structure classes (powers of two, odd,
// near-power boundaries, huge) and adversarial dividends.
func TestFastDivExact(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 31, 32, 33, 63, 64, 65,
		100, 127, 255, 256, 257, 1000, 4095, 4096, 4097,
		1<<31 - 1, 1 << 31, 1<<31 + 1, 1<<42 + 12345,
		1<<63 - 1, 1 << 63, 1<<63 + 1, math.MaxUint64 - 1, math.MaxUint64,
	}
	edges := []uint64{0, 1, 2, 3, math.MaxUint64, math.MaxUint64 - 1, 1 << 32, 1<<32 - 1, 1 << 63}
	rng := rand.New(rand.NewPCG(7, 11))
	for _, d := range divisors {
		f := newFastDiv(d)
		check := func(x uint64) {
			t.Helper()
			if got, want := f.mod(x), x%d; got != want {
				t.Fatalf("fastDiv(%d).mod(%d) = %d, want %d", d, x, got, want)
			}
		}
		for _, x := range edges {
			check(x)
		}
		for _, e := range []uint64{d - 1, d, d + 1, 2*d - 1, 2 * d, 2*d + 1} {
			check(e) // wrap-around values are fine: they are still dividends
		}
		for i := 0; i < 20000; i++ {
			check(rng.Uint64())
		}
	}
}

// TestFastDivRandomDivisors sweeps random divisors so the magic
// construction itself (normal vs add-corrected path) is exercised
// broadly, not just on hand-picked values.
func TestFastDivRandomDivisors(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 2000; i++ {
		d := rng.Uint64()
		if d == 0 {
			d = 1
		}
		f := newFastDiv(d)
		for j := 0; j < 50; j++ {
			x := rng.Uint64()
			if got, want := f.mod(x), x%d; got != want {
				t.Fatalf("fastDiv(%d).mod(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	cfg := DefaultConfig(256 << 20)
	s := New(cfg, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i) * 0x9e37)
	}
}

func BenchmarkObservePair(b *testing.B) {
	cfg := DefaultConfig(256 << 20)
	s1, s2 := New(cfg, 64), New(cfg, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ObservePair(s1, s2, uint64(i)*0x9e37)
	}
}
