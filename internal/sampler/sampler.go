// Package sampler implements NDPExt's set-based miss-curve samplers
// (paper §V-A). NDPExt's DRAM cache is direct-mapped (or low-associative)
// and partitioned along sets, so the stack property does not hold and
// classic UMON way-sampling cannot be used. Instead each sampler
// simultaneously shadows c = 64 hypothetical capacities, geometrically
// spaced between a minimum and the full per-unit DRAM space (per-step
// factor 1.16 in the paper's 32 kB..256 MB range), sampling k = 32 sets
// at each capacity and scaling the counts by (sets / k).
package sampler

import (
	"fmt"
	"math"
)

// Config sizes the samplers.
type Config struct {
	CapacityPoints  int   // c: simultaneous capacities per sampler (64)
	SampleSets      int   // k: sampled sets per capacity (32; Fig. 9d knob)
	MinBytes        int64 // smallest monitored capacity
	MaxBytes        int64 // largest monitored capacity (full unit DRAM)
	SamplersPerUnit int   // S: samplers per NDP unit (4)
}

// DefaultConfig returns the paper's sampler design, parameterized by the
// per-unit DRAM capacity (256 MB in the paper, scaled in this repo).
func DefaultConfig(unitBytes int64) Config {
	return Config{
		CapacityPoints:  64,
		SampleSets:      32,
		MinBytes:        unitBytes / 8192, // 32 kB when unitBytes = 256 MB
		MaxBytes:        unitBytes,
		SamplersPerUnit: 4,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CapacityPoints < 2 {
		return fmt.Errorf("sampler: need at least 2 capacity points")
	}
	if c.SampleSets < 1 {
		return fmt.Errorf("sampler: need at least 1 sample set")
	}
	if c.MinBytes < 1 || c.MaxBytes < c.MinBytes {
		return fmt.Errorf("sampler: bad capacity range [%d, %d]", c.MinBytes, c.MaxBytes)
	}
	if c.SamplersPerUnit < 1 {
		return fmt.Errorf("sampler: need at least 1 sampler per unit")
	}
	return nil
}

// StorageBytes reports the SRAM cost of one sampler: 4 bytes per sampled
// set per capacity point (paper: 32 x 64 x 4 B = 8 kB).
func (c Config) StorageBytes() int {
	return c.SampleSets * c.CapacityPoints * 4
}

// Sampler shadows the miss behaviour of one stream at many capacities.
type Sampler struct {
	cfg       Config
	itemBytes int
	points    []capPoint
	accesses  uint64
}

// capPoint is one hypothetical capacity: a direct-mapped cache of numSets
// sets of which only the sampled ones hold (shadow) state.
//
// A set is sampled iff set%stride == 0 && set < limit (limit = stride*k,
// precomputed so the hot path needs one division for the sampled-set
// index instead of two). Shadow tags live in a dense k-slot array indexed
// by set/stride rather than a map: the index is a bijection over the
// sampled sets, so hit/miss decisions are identical, without the hashing.
type capPoint struct {
	bytes   int64
	numSets uint64
	stride  uint64 // sample set spacing (static interleaving)
	limit   uint64 // stride * SampleSets: first non-sampled multiple
	// Precomputed magic dividers for the two hot-loop divisions (the
	// set index within numSets and the sampled-slot index within the
	// stride); bit-exact with % per TestFastDivExact.
	bySets   fastDiv
	byStride fastDiv
	tags     []uint64
	occ      []bool
	hits     uint64
	misses   uint64
}

// New builds a sampler for a stream whose cache items (affine blocks or
// indirect elements) are itemBytes each.
func New(cfg Config, itemBytes int) *Sampler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if itemBytes <= 0 {
		panic(fmt.Sprintf("sampler: itemBytes = %d", itemBytes))
	}
	s := &Sampler{cfg: cfg, itemBytes: itemBytes}
	// Geometric spacing from MinBytes to MaxBytes.
	ratio := math.Pow(float64(cfg.MaxBytes)/float64(cfg.MinBytes), 1/float64(cfg.CapacityPoints-1))
	for i := 0; i < cfg.CapacityPoints; i++ {
		b := int64(float64(cfg.MinBytes) * math.Pow(ratio, float64(i)))
		if i == cfg.CapacityPoints-1 {
			b = cfg.MaxBytes
		}
		n := uint64(b) / uint64(itemBytes)
		if n == 0 {
			n = 1
		}
		stride := n / uint64(cfg.SampleSets)
		if stride == 0 {
			stride = 1
		}
		s.points = append(s.points, capPoint{
			bytes: b, numSets: n, stride: stride,
			limit:    stride * uint64(cfg.SampleSets),
			bySets:   newFastDiv(n),
			byStride: newFastDiv(stride),
			tags:     make([]uint64, cfg.SampleSets),
			occ:      make([]bool, cfg.SampleSets),
		})
	}
	return s
}

// hashItem matches the placement hash family used by the stream cache so
// the shadow sets see the same distribution.
func hashItem(id uint64) uint64 {
	x := id ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Observe feeds one access (by item ID) to the sampler.
func (s *Sampler) Observe(item uint64) {
	s.accesses++
	h := hashItem(item)
	for i := range s.points {
		p := &s.points[i]
		set := p.bySets.mod(h)
		if set >= p.limit {
			continue // not a sampled set at this capacity
		}
		j, r := p.byStride.divmod(set)
		if r != 0 {
			continue
		}
		p.touch(j, item)
	}
}

// touch records an access to sampled slot j (= set/stride).
func (p *capPoint) touch(j, item uint64) {
	if p.occ[j] && p.tags[j] == item {
		p.hits++
	} else {
		p.misses++
		p.tags[j] = item
		p.occ[j] = true
	}
}

// ObservePair feeds one access to two samplers at once. When both share
// the same geometry (same Config and item size — always true for the
// local/global sampler pair the simulator keeps per stream), the
// per-capacity set arithmetic is computed once and applied to both
// shadow states, halving the dominant per-observation cost; otherwise it
// falls back to two independent Observe calls. The recorded hits and
// misses are identical either way.
func ObservePair(a, b *Sampler, item uint64) {
	if a.cfg != b.cfg || a.itemBytes != b.itemBytes {
		a.Observe(item)
		b.Observe(item)
		return
	}
	a.accesses++
	b.accesses++
	h := hashItem(item)
	for i := range a.points {
		pa := &a.points[i]
		set := pa.bySets.mod(h)
		if set >= pa.limit {
			continue
		}
		j, r := pa.byStride.divmod(set)
		if r != 0 {
			continue
		}
		pa.touch(j, item)
		b.points[i].touch(j, item)
	}
}

// Accesses reports the total observed accesses.
func (s *Sampler) Accesses() uint64 { return s.accesses }

// ItemBytes reports the item granularity the sampler was built for.
func (s *Sampler) ItemBytes() int { return s.itemBytes }

// Reset clears shadow state and counters for the next epoch. A Reset
// sampler is indistinguishable from a freshly built one with the same
// Config and item size (the capacity-point geometry is a pure function
// of those), which is what lets the simulator pool and reuse samplers
// across epoch reassignments instead of reallocating them.
func (s *Sampler) Reset() {
	s.accesses = 0
	for i := range s.points {
		p := &s.points[i]
		p.hits, p.misses = 0, 0
		clear(p.occ)
	}
}

// Curve extracts the miss curve observed so far. Capacity points whose
// sampled sets saw no accesses are dropped (interpolation covers them),
// and the remaining points are fitted with a weighted non-increasing
// isotonic regression: set sampling at a single capacity is noisy
// (especially near the working-set knee, where few items land in the k
// sampled sets), and a miss curve is physically non-increasing for the
// hashed direct-mapped caches NDPExt uses, so the monotone fit recovers
// the underlying curve (the paper similarly interpolates, §V-A).
func (s *Sampler) Curve() Curve {
	c := Curve{ItemBytes: s.itemBytes, Accesses: s.accesses}
	for i := range s.points {
		p := &s.points[i]
		total := p.hits + p.misses
		if total == 0 {
			continue
		}
		c.Points = append(c.Points, CurvePoint{
			Bytes:    p.bytes,
			MissRate: float64(p.misses) / float64(total),
			Sampled:  total,
		})
	}
	fitNonIncreasing(c.Points)
	return c
}

// fitNonIncreasing applies pool-adjacent-violators to make MissRate
// non-increasing in capacity, weighting each point by its sampled count.
func fitNonIncreasing(pts []CurvePoint) {
	if len(pts) < 2 {
		return
	}
	type block struct {
		v, w float64
		n    int
	}
	blocks := make([]block, 0, len(pts))
	// Reverse order turns the non-increasing fit into the standard
	// non-decreasing PAVA.
	for i := len(pts) - 1; i >= 0; i-- {
		b := block{v: pts[i].MissRate, w: float64(pts[i].Sampled), n: 1}
		blocks = append(blocks, b)
		for len(blocks) >= 2 {
			last := blocks[len(blocks)-1]
			prev := blocks[len(blocks)-2]
			if prev.v <= last.v {
				break
			}
			merged := block{
				v: (prev.v*prev.w + last.v*last.w) / (prev.w + last.w),
				w: prev.w + last.w,
				n: prev.n + last.n,
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, merged)
		}
	}
	i := len(pts) - 1
	for _, b := range blocks {
		for j := 0; j < b.n; j++ {
			pts[i].MissRate = b.v
			i--
		}
	}
}

// CurvePoint is one (capacity, miss rate) observation.
type CurvePoint struct {
	Bytes    int64
	MissRate float64
	Sampled  uint64 // sampled accesses backing this point
}

// Curve is a stream's miss curve: miss rate as a function of allocated
// cache capacity, interpolated between the sampled capacities as in
// Jigsaw.
type Curve struct {
	ItemBytes int
	Accesses  uint64 // total stream accesses in the epoch
	Points    []CurvePoint
}

// MissRateAt interpolates the miss rate at the given capacity
// (linear in log-capacity between sampled points, clamped at the ends).
// Zero capacity always misses.
func (c Curve) MissRateAt(bytes int64) float64 {
	if bytes <= 0 {
		return 1
	}
	if len(c.Points) == 0 {
		return 1
	}
	if bytes <= c.Points[0].Bytes {
		return c.Points[0].MissRate
	}
	last := c.Points[len(c.Points)-1]
	if bytes >= last.Bytes {
		return last.MissRate
	}
	for i := 1; i < len(c.Points); i++ {
		if bytes <= c.Points[i].Bytes {
			a, b := c.Points[i-1], c.Points[i]
			f := (math.Log(float64(bytes)) - math.Log(float64(a.Bytes))) /
				(math.Log(float64(b.Bytes)) - math.Log(float64(a.Bytes)))
			return a.MissRate + f*(b.MissRate-a.MissRate)
		}
	}
	return last.MissRate
}

// MissesAt estimates the absolute epoch misses at the given capacity.
func (c Curve) MissesAt(bytes int64) float64 {
	return float64(c.Accesses) * c.MissRateAt(bytes)
}

// Knee returns the smallest sampled capacity whose miss rate is within
// tol of the curve's floor (the miss rate at the largest capacity) -- the
// point past which more capacity stops helping. Replication policy uses
// it to size replicas: a stream whose knee is small (a hot head, e.g.
// Zipf-skewed embeddings) replicates cheaply, while a stream that only
// flattens at its full footprint is better served by one shared copy.
// Returns 0 for an empty curve.
func (c Curve) Knee(tol float64) int64 {
	if len(c.Points) == 0 {
		return 0
	}
	floor := c.Points[len(c.Points)-1].MissRate
	for _, p := range c.Points {
		if p.MissRate <= floor+tol {
			return p.Bytes
		}
	}
	return c.Points[len(c.Points)-1].Bytes
}

// FlatCurve returns a pessimistic all-miss curve for streams no sampler
// covered (used until coverage catches up across epochs, §V-B).
func FlatCurve(itemBytes int, accesses uint64) Curve {
	return Curve{
		ItemBytes: itemBytes,
		Accesses:  accesses,
		Points: []CurvePoint{
			{Bytes: 1, MissRate: 1},
			{Bytes: 1 << 40, MissRate: 1},
		},
	}
}
