// Package fault is a seeded, deterministic fault-injection engine for
// the simulated memory path. A Spec describes which fault models are
// active; an Injector evaluates them against simulated time using the
// simulator's own RNG (never wall-clock), so a (spec, seed) pair always
// perturbs a run identically. The supported models are:
//
//   - cxl-retry: transient CXL flit retries. Each extended-memory access
//     independently suffers 0..max retries (probability rate per draw);
//     every retry adds lat of latency and re-sends the request flit,
//     charging link energy.
//   - cxl-degrade: CXL link degradation. During [at, at+dur) the link
//     runs at LinkGBps/factor, e.g. after retraining to fewer lanes.
//   - vault-fail: a unit's DRAM vault goes offline at time at and stays
//     dead. Accesses to stream-cache lines homed there fall back to
//     extended memory until reconfiguration remaps the streams.
//   - noc-flap: a flapping on-package NoC link. During [at, at+dur),
//     hops through matching (stack, dir) links pay lat extra latency.
//
// Spec grammar (see Parse): clauses separated by ';', parameters by ','.
//
//	spec   := clause (';' clause)*
//	clause := kind (',' key '=' value)*
//	kind   := "cxl-retry" | "cxl-degrade" | "vault-fail" | "noc-flap"
//
// Durations accept ns/us/ms/s suffixes ("200ns", "40us"); a bare number
// means nanoseconds. Example:
//
//	vault-fail,unit=3,at=40us;cxl-retry,rate=0.01,lat=200ns
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"ndpext/internal/sim"
)

// Kind enumerates the fault models.
type Kind int

const (
	// CXLRetry injects transient flit retries on the CXL link.
	CXLRetry Kind = iota
	// CXLDegrade steps the CXL link bandwidth down for an interval.
	CXLDegrade
	// VaultFail takes one unit's DRAM vault offline permanently.
	VaultFail
	// NoCFlap adds latency to matching NoC hops for an interval.
	NoCFlap
)

// String names the kind using the spec-grammar spelling.
func (k Kind) String() string {
	switch k {
	case CXLRetry:
		return "cxl-retry"
	case CXLDegrade:
		return "cxl-degrade"
	case VaultFail:
		return "vault-fail"
	case NoCFlap:
		return "noc-flap"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Clause is one parsed fault model instance. Fields are interpreted per
// Kind; unused fields hold their defaults.
type Clause struct {
	Kind Kind

	// Rate is the per-draw retry probability (cxl-retry).
	Rate float64
	// Max bounds retries per access (cxl-retry).
	Max int
	// Lat is the penalty per retry (cxl-retry) or per hop (noc-flap).
	Lat sim.Time

	// At is when the fault begins.
	At sim.Time
	// Dur is how long the fault lasts; 0 means forever
	// (cxl-degrade, noc-flap; vault-fail is always permanent).
	Dur sim.Time

	// Factor divides the link bandwidth (cxl-degrade); must be >= 1.
	Factor float64

	// Unit is the failed unit index (vault-fail).
	Unit int

	// Stack and Dir select which NoC links flap (noc-flap); -1 is a
	// wildcard. Dir uses the router's encoding: 0 +X, 1 -X, 2 +Y, 3 -Y.
	Stack, Dir int
}

// active reports whether the clause's time window covers t.
func (c Clause) active(t sim.Time) bool {
	if t < c.At {
		return false
	}
	return c.Dur == 0 || t < c.At+c.Dur
}

// Spec is a parsed fault-injection specification.
type Spec struct {
	Clauses []Clause
}

// Empty reports whether the spec activates no fault model.
func (s Spec) Empty() bool { return len(s.Clauses) == 0 }

// String renders the spec in the grammar Parse accepts.
func (s Spec) String() string {
	var parts []string
	for _, c := range s.Clauses {
		p := c.Kind.String()
		switch c.Kind {
		case CXLRetry:
			p += fmt.Sprintf(",rate=%g,max=%d,lat=%s", c.Rate, c.Max, fmtDur(c.Lat))
		case CXLDegrade:
			p += fmt.Sprintf(",at=%s,factor=%g", fmtDur(c.At), c.Factor)
			if c.Dur != 0 {
				p += ",dur=" + fmtDur(c.Dur)
			}
		case VaultFail:
			p += fmt.Sprintf(",unit=%d,at=%s", c.Unit, fmtDur(c.At))
		case NoCFlap:
			p += fmt.Sprintf(",stack=%d,dir=%d,at=%s,lat=%s", c.Stack, c.Dir, fmtDur(c.At), fmtDur(c.Lat))
			if c.Dur != 0 {
				p += ",dur=" + fmtDur(c.Dur)
			}
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ";")
}

func fmtDur(t sim.Time) string { return fmt.Sprintf("%gns", t.NS()) }

// Validate checks machine-dependent bounds: numUnits is the number of
// NDP units in the configured machine (pass <= 0 to skip unit checks,
// e.g. when parsing before the machine is known).
func (s Spec) Validate(numUnits int) error {
	for i, c := range s.Clauses {
		if c.Kind == VaultFail && numUnits > 0 && (c.Unit < 0 || c.Unit >= numUnits) {
			return fmt.Errorf("fault clause %d: vault-fail unit %d out of range [0,%d)", i, c.Unit, numUnits)
		}
	}
	return nil
}

// Parse parses the fault spec grammar documented in the package comment.
// An empty string yields an empty Spec.
func Parse(spec string) (Spec, error) {
	var out Spec
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return out, nil
	}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		c, err := parseClause(raw)
		if err != nil {
			return Spec{}, err
		}
		out.Clauses = append(out.Clauses, c)
	}
	return out, nil
}

// parseClause parses one "kind,key=value,..." clause, applying per-kind
// defaults and rejecting unknown or ill-typed parameters.
func parseClause(raw string) (Clause, error) {
	fields := strings.Split(raw, ",")
	kind := strings.TrimSpace(fields[0])
	var c Clause
	switch kind {
	case "cxl-retry":
		c = Clause{Kind: CXLRetry, Rate: 0, Max: 3, Lat: sim.FromNS(100)}
	case "cxl-degrade":
		c = Clause{Kind: CXLDegrade, Factor: 2}
	case "vault-fail":
		c = Clause{Kind: VaultFail, Unit: -1}
	case "noc-flap":
		c = Clause{Kind: NoCFlap, Stack: -1, Dir: -1, Lat: sim.FromNS(50)}
	default:
		return Clause{}, fmt.Errorf("fault clause %q: unknown kind %q", raw, kind)
	}
	seenUnit := false
	for _, kv := range fields[1:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Clause{}, fmt.Errorf("fault clause %q: parameter %q is not key=value", raw, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch {
		case key == "rate" && c.Kind == CXLRetry:
			c.Rate, err = parseUnitFloat(val)
		case key == "max" && c.Kind == CXLRetry:
			c.Max, err = parseInt(val)
			if err == nil && c.Max < 1 {
				err = fmt.Errorf("max must be >= 1")
			}
		case key == "lat" && (c.Kind == CXLRetry || c.Kind == NoCFlap):
			c.Lat, err = parseDur(val)
		case key == "at" && c.Kind != CXLRetry:
			c.At, err = parseDur(val)
		case key == "dur" && (c.Kind == CXLDegrade || c.Kind == NoCFlap):
			c.Dur, err = parseDur(val)
		case key == "factor" && c.Kind == CXLDegrade:
			c.Factor, err = strconv.ParseFloat(val, 64)
			if err == nil && c.Factor < 1 {
				err = fmt.Errorf("factor must be >= 1")
			}
		case key == "unit" && c.Kind == VaultFail:
			c.Unit, err = parseInt(val)
			seenUnit = err == nil
		case key == "stack" && c.Kind == NoCFlap:
			c.Stack, err = parseInt(val)
		case key == "dir" && c.Kind == NoCFlap:
			c.Dir, err = parseInt(val)
			if err == nil && (c.Dir < -1 || c.Dir > 3) {
				err = fmt.Errorf("dir must be -1 (any) or 0..3")
			}
		default:
			err = fmt.Errorf("unknown parameter")
		}
		if err != nil {
			return Clause{}, fmt.Errorf("fault clause %q: parameter %q: %v", raw, kv, err)
		}
	}
	if c.Kind == VaultFail && !seenUnit {
		return Clause{}, fmt.Errorf("fault clause %q: vault-fail requires unit=N", raw)
	}
	if c.Kind == VaultFail && c.Unit < 0 {
		return Clause{}, fmt.Errorf("fault clause %q: unit must be >= 0", raw)
	}
	return c, nil
}

func parseInt(val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("not an integer")
	}
	return n, nil
}

// parseUnitFloat parses a probability in [0, 1].
func parseUnitFloat(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("not a number")
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("must be in [0,1]")
	}
	return f, nil
}

// parseDur parses a non-negative duration with an ns/us/ms/s suffix;
// a bare number is nanoseconds.
func parseDur(val string) (sim.Time, error) {
	scale := 1.0 // ns
	num := val
	switch {
	case strings.HasSuffix(val, "ns"):
		num = val[:len(val)-2]
	case strings.HasSuffix(val, "us"), strings.HasSuffix(val, "µs"):
		num, scale = strings.TrimSuffix(strings.TrimSuffix(val, "us"), "µs"), 1e3
	case strings.HasSuffix(val, "ms"):
		num, scale = val[:len(val)-2], 1e6
	case strings.HasSuffix(val, "s"):
		num, scale = val[:len(val)-1], 1e9
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", val)
	}
	if f < 0 {
		return 0, fmt.Errorf("duration %q is negative", val)
	}
	return sim.FromNS(f * scale), nil
}
