package fault

import (
	"testing"

	"ndpext/internal/sim"
)

func TestParseAppliesDefaults(t *testing.T) {
	spec, err := Parse("cxl-retry,rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Clauses[0]
	if c.Kind != CXLRetry || c.Rate != 0.5 || c.Max != 3 || c.Lat != sim.FromNS(100) {
		t.Fatalf("bad defaults: %+v", c)
	}

	spec, err = Parse("cxl-degrade,at=40us")
	if err != nil {
		t.Fatal(err)
	}
	c = spec.Clauses[0]
	if c.Kind != CXLDegrade || c.Factor != 2 || c.At != sim.FromNS(40e3) || c.Dur != 0 {
		t.Fatalf("bad defaults: %+v", c)
	}

	spec, err = Parse("noc-flap,at=1ms,dur=2ms")
	if err != nil {
		t.Fatal(err)
	}
	c = spec.Clauses[0]
	if c.Stack != -1 || c.Dir != -1 || c.Lat != sim.FromNS(50) {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestParseMultiClause(t *testing.T) {
	spec, err := Parse(" vault-fail,unit=3,at=40us ; cxl-retry,rate=0.01,lat=200ns ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Clauses) != 2 {
		t.Fatalf("got %d clauses, want 2", len(spec.Clauses))
	}
	if v := spec.Clauses[0]; v.Kind != VaultFail || v.Unit != 3 || v.At != sim.FromNS(40e3) {
		t.Fatalf("bad vault-fail clause: %+v", v)
	}
	if r := spec.Clauses[1]; r.Kind != CXLRetry || r.Rate != 0.01 || r.Lat != sim.FromNS(200) {
		t.Fatalf("bad cxl-retry clause: %+v", r)
	}
}

func TestParseDurationSuffixes(t *testing.T) {
	cases := map[string]sim.Time{
		"100":   sim.FromNS(100), // bare number = ns
		"100ns": sim.FromNS(100),
		"2us":   sim.FromNS(2e3),
		"2µs":   sim.FromNS(2e3),
		"3ms":   sim.FromNS(3e6),
		"1s":    sim.FromNS(1e9),
		"1.5us": sim.FromNS(1500),
	}
	for in, want := range cases {
		spec, err := Parse("cxl-degrade,at=" + in)
		if err != nil {
			t.Fatalf("at=%s: %v", in, err)
		}
		if got := spec.Clauses[0].At; got != want {
			t.Fatalf("at=%s parsed to %v, want %v", in, got, want)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"meteor-strike",             // unknown kind
		"cxl-retry,rate=2",          // rate out of [0,1]
		"cxl-retry,rate=-0.5",       // negative rate
		"cxl-retry,max=0",           // max below 1
		"cxl-retry,unit=3",          // parameter of another kind
		"cxl-degrade,factor=0.5",    // factor below 1
		"cxl-degrade,at=-5us",       // negative time
		"vault-fail,at=1us",         // missing required unit
		"vault-fail,unit=-2,at=1us", // negative unit
		"noc-flap,dir=4",            // direction out of range
		"noc-flap,lat",              // not key=value
		"cxl-retry,rate=abc",        // not a number
		"cxl-degrade,at=12parsecs",  // unknown suffix
		"vault-fail,unit=1,bogus=1", // unknown parameter
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", s)
		}
	}
}

func TestParseEmptyAndString(t *testing.T) {
	spec, err := Parse("")
	if err != nil || !spec.Empty() {
		t.Fatalf("empty string: spec=%+v err=%v", spec, err)
	}
	if New(spec, 1) != nil {
		t.Fatal("empty spec built a non-nil injector")
	}

	// String must render in the grammar Parse accepts (round trip).
	orig, err := Parse("cxl-retry,rate=0.05,lat=200ns;vault-fail,unit=5,at=300us;cxl-degrade,at=0,factor=4,dur=1ms")
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("String() output %q does not re-parse: %v", orig.String(), err)
	}
	if len(again.Clauses) != len(orig.Clauses) {
		t.Fatalf("round trip lost clauses: %q", orig.String())
	}
	for i := range orig.Clauses {
		if again.Clauses[i] != orig.Clauses[i] {
			t.Fatalf("clause %d changed in round trip:\n%+v\nvs\n%+v", i, orig.Clauses[i], again.Clauses[i])
		}
	}
}

func TestValidateUnitRange(t *testing.T) {
	spec, err := Parse("vault-fail,unit=8,at=1us")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(8); err == nil {
		t.Fatal("unit 8 accepted on an 8-unit machine")
	}
	if err := spec.Validate(9); err != nil {
		t.Fatalf("unit 8 rejected on a 9-unit machine: %v", err)
	}
	if err := spec.Validate(0); err != nil {
		t.Fatalf("numUnits<=0 must skip the check: %v", err)
	}
}

func TestClauseWindows(t *testing.T) {
	spec, err := Parse("cxl-degrade,at=10us,dur=5us,factor=4")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(spec, 1)
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{sim.FromNS(9e3), 1},  // before
		{sim.FromNS(10e3), 4}, // window start is inclusive
		{sim.FromNS(14e3), 4}, // inside
		{sim.FromNS(15e3), 1}, // window end is exclusive
	}
	for _, c := range cases {
		if got := inj.CXLBWFactor(c.t); got != c.want {
			t.Errorf("CXLBWFactor(%v) = %v, want %v", c.t, got, c.want)
		}
	}

	// dur=0 means forever.
	forever := New(mustParse(t, "cxl-degrade,at=10us,factor=2"), 1)
	if forever.CXLBWFactor(sim.FromNS(1e12)) != 2 {
		t.Fatal("dur=0 window expired")
	}
}

func TestVaultFailAndFailedUnits(t *testing.T) {
	inj := New(mustParse(t, "vault-fail,unit=5,at=10us;vault-fail,unit=2,at=20us;vault-fail,unit=5,at=1us"), 1)
	if inj.VaultFailed(5, sim.FromNS(500)) {
		t.Fatal("vault 5 failed before its at time")
	}
	if !inj.VaultFailed(5, sim.FromNS(2e3)) {
		t.Fatal("vault 5 healthy after its at time")
	}
	if got := inj.FailedUnits(sim.FromNS(15e3)); len(got) != 1 || got[0] != 5 {
		t.Fatalf("FailedUnits(15us) = %v, want [5]", got)
	}
	if got := inj.FailedUnits(sim.FromNS(25e3)); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("FailedUnits(25us) = %v, want [2 5] (sorted, deduped)", got)
	}
}

func TestNoCFlapMatching(t *testing.T) {
	inj := New(mustParse(t, "noc-flap,stack=1,dir=2,lat=30ns;noc-flap,stack=-1,dir=2,lat=10ns"), 1)
	// stack 1, dir 2 matches both clauses; stack 0 only the wildcard.
	if got := inj.NoCFlapDelay(1, 2, 0); got != sim.FromNS(40) {
		t.Fatalf("delay(1,2) = %v, want 40ns", got)
	}
	if got := inj.NoCFlapDelay(0, 2, 0); got != sim.FromNS(10) {
		t.Fatalf("delay(0,2) = %v, want 10ns", got)
	}
	if got := inj.NoCFlapDelay(1, 3, 0); got != 0 {
		t.Fatalf("delay(1,3) = %v, want 0", got)
	}
	s := inj.Stats()
	if s.FlapDelays != 2 || s.FlapTime != sim.FromNS(50) {
		t.Fatalf("bad flap stats: %+v", s)
	}
}

// Same (spec, seed) and call sequence must reproduce the retry episode
// stream exactly; a different seed must diverge.
func TestRetryDeterminism(t *testing.T) {
	draw := func(seed uint64) (total int, extra sim.Time) {
		inj := New(mustParse(t, "cxl-retry,rate=0.3,lat=100ns"), seed)
		for k := 0; k < 2000; k++ {
			n, e := inj.CXLRetry(sim.Time(k) * sim.FromNS(10))
			total += n
			extra += e
		}
		return
	}
	n1, e1 := draw(7)
	n2, e2 := draw(7)
	if n1 != n2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d,%v) vs (%d,%v)", n1, e1, n2, e2)
	}
	if n1 == 0 {
		t.Fatal("rate=0.3 over 2000 draws injected nothing")
	}
	n3, _ := draw(8)
	if n3 == n1 {
		t.Fatalf("different seeds produced identical retry totals (%d)", n1)
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	inj := New(mustParse(t, "cxl-retry,rate=0"), 1)
	for k := 0; k < 1000; k++ {
		if n, e := inj.CXLRetry(sim.Time(k)); n != 0 || e != 0 {
			t.Fatalf("rate=0 injected a retry at draw %d", k)
		}
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("rate=0 accumulated stats: %+v", s)
	}
}

func TestNilInjectorStats(t *testing.T) {
	var inj *Injector
	if s := inj.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector has stats: %+v", s)
	}
}

func mustParse(t *testing.T, s string) Spec {
	t.Helper()
	spec, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// FuzzParseSpec checks that Parse never panics and that every accepted
// spec round-trips: String() re-parses to the same clauses.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("cxl-retry,rate=0.01")
	f.Add("vault-fail,unit=3,at=40us;cxl-retry,rate=0.01,lat=200ns")
	f.Add("cxl-degrade,at=0,factor=4,dur=1ms")
	f.Add("noc-flap,stack=1,dir=2,at=1us,dur=2us,lat=30ns")
	f.Add("cxl-retry,rate=2")
	f.Add(";;;,=,=;")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := Parse(s)
		if err != nil {
			return
		}
		again, err := Parse(spec.String())
		if err != nil {
			t.Fatalf("String() of accepted spec %q does not re-parse: %v", s, err)
		}
		if len(again.Clauses) != len(spec.Clauses) {
			t.Fatalf("round trip changed clause count for %q", s)
		}
		for i := range spec.Clauses {
			if again.Clauses[i] != spec.Clauses[i] {
				t.Fatalf("round trip changed clause %d of %q:\n%+v\nvs\n%+v",
					i, s, spec.Clauses[i], again.Clauses[i])
			}
		}
	})
}
