package fault

import (
	"sort"

	"ndpext/internal/sim"
	"ndpext/internal/telemetry"
)

// Stats counts the perturbations an Injector actually applied. All
// counts are deterministic for a fixed (Spec, seed) and access sequence.
type Stats struct {
	// Injected is the total number of perturbation events applied:
	// retry episodes, flap-delayed hops, and failed-vault redirects.
	Injected uint64
	// Retries is the number of CXL flit retries (one episode may retry
	// several times).
	Retries uint64
	// RetryTime is the latency added by retries.
	RetryTime sim.Time
	// DegradedAccesses counts CXL accesses served at reduced bandwidth.
	DegradedAccesses uint64
	// FlapDelays counts NoC hops delayed by a flapping link.
	FlapDelays uint64
	// FlapTime is the latency added by link flaps.
	FlapTime sim.Time
	// VaultRedirects counts accesses redirected to extended memory
	// because their home vault was offline.
	VaultRedirects uint64
}

// Injector evaluates a Spec against simulated time. It is not safe for
// concurrent use; each simulation run owns its own Injector (a nil
// *Injector simply means injection is disabled — every consumer guards
// with a nil check, which is the entire disabled-path cost).
type Injector struct {
	rng     *sim.RNG
	retries []Clause // CXLRetry clauses
	degrade []Clause // CXLDegrade clauses
	vaults  []Clause // VaultFail clauses
	flaps   []Clause // NoCFlap clauses
	stats   Stats
}

// New builds an injector for spec. Fault randomness comes from a
// dedicated substream of the simulator RNG seeded with seed, so fault
// draws never perturb workload or placement randomness. Returns nil for
// an empty spec: injection disabled.
func New(spec Spec, seed uint64) *Injector {
	if spec.Empty() {
		return nil
	}
	inj := &Injector{rng: sim.NewRNG(seed).Split(0xFA_01)}
	for _, c := range spec.Clauses {
		switch c.Kind {
		case CXLRetry:
			inj.retries = append(inj.retries, c)
		case CXLDegrade:
			inj.degrade = append(inj.degrade, c)
		case VaultFail:
			inj.vaults = append(inj.vaults, c)
		case NoCFlap:
			inj.flaps = append(inj.flaps, c)
		}
	}
	return inj
}

// CXLRetry draws the retry episode for one extended-memory access at
// time t: n retries adding extra total latency. n == 0 for most calls.
// Each active cxl-retry clause contributes geometrically distributed
// retries capped at its Max.
func (i *Injector) CXLRetry(t sim.Time) (n int, extra sim.Time) {
	for _, c := range i.retries {
		if c.Rate <= 0 || !c.active(t) {
			continue
		}
		for r := 0; r < c.Max && i.rng.Float64() < c.Rate; r++ {
			n++
			extra += c.Lat
		}
	}
	if n > 0 {
		i.stats.Injected++
		i.stats.Retries += uint64(n)
		i.stats.RetryTime += extra
	}
	return n, extra
}

// CXLBWFactor returns the bandwidth divisor in effect at t (>= 1; 1
// means the link is healthy). Pure: draws no randomness and mutates no
// stats, so epoch logic may probe it freely.
func (i *Injector) CXLBWFactor(t sim.Time) float64 {
	f := 1.0
	for _, c := range i.degrade {
		if c.active(t) && c.Factor > f {
			f = c.Factor
		}
	}
	return f
}

// CountDegraded records one CXL access served at reduced bandwidth.
func (i *Injector) CountDegraded() { i.stats.DegradedAccesses++ }

// VaultFailed reports whether unit's DRAM vault is offline at t.
func (i *Injector) VaultFailed(unit int, t sim.Time) bool {
	for _, c := range i.vaults {
		if c.Unit == unit && t >= c.At {
			return true
		}
	}
	return false
}

// FailedUnits returns the sorted unit indices whose vaults are offline
// at t.
func (i *Injector) FailedUnits(t sim.Time) []int {
	var out []int
	for _, c := range i.vaults {
		if t < c.At {
			continue
		}
		dup := false
		for _, u := range out {
			if u == c.Unit {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c.Unit)
		}
	}
	sort.Ints(out)
	return out
}

// RecordRedirect records one access redirected to extended memory
// because its home vault was offline.
func (i *Injector) RecordRedirect() {
	i.stats.Injected++
	i.stats.VaultRedirects++
}

// NoCFlapDelay returns the extra latency a hop through (stack, dir)
// pays at time t, and accounts it.
func (i *Injector) NoCFlapDelay(stack, dir int, t sim.Time) sim.Time {
	var d sim.Time
	for _, c := range i.flaps {
		if !c.active(t) {
			continue
		}
		if (c.Stack == -1 || c.Stack == stack) && (c.Dir == -1 || c.Dir == dir) {
			d += c.Lat
		}
	}
	if d > 0 {
		i.stats.Injected++
		i.stats.FlapDelays++
		i.stats.FlapTime += d
	}
	return d
}

// Stats returns the perturbations applied so far.
func (i *Injector) Stats() Stats {
	if i == nil {
		return Stats{}
	}
	return i.stats
}

// ReportTelemetry publishes the injector's counters under the "fault."
// prefix.
func (i *Injector) ReportTelemetry(r *telemetry.Registry) {
	s := i.Stats()
	r.PutUint("fault.injected", s.Injected)
	r.PutUint("fault.retries", s.Retries)
	r.PutTime("fault.retry_time", s.RetryTime)
	r.PutUint("fault.degraded_accesses", s.DegradedAccesses)
	r.PutUint("fault.flap_delays", s.FlapDelays)
	r.PutTime("fault.flap_time", s.FlapTime)
	r.PutUint("fault.vault_redirects", s.VaultRedirects)
}
