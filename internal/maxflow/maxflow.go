// Package maxflow implements the Edmonds-Karp maximum-flow algorithm and
// the sampler-assignment formulation of paper §V-B: assigning each NDP
// unit's four miss-curve samplers to data streams so that as many streams
// as possible are covered, under the constraint that a unit can only
// sample streams it accesses.
package maxflow

import (
	"fmt"
	"sort"
)

// Graph is a directed flow network with integer capacities.
type Graph struct {
	n     int
	adj   [][]int32 // adjacency: edge indices (including reverse edges)
	edges []edge
}

type edge struct {
	to   int32
	cap  int32 // residual capacity
	orig int32 // original capacity (to report flow)
}

// NewGraph returns a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("maxflow: %d nodes", n))
	}
	return &Graph{n: n, adj: make([][]int32, n)}
}

// AddEdge adds a directed edge u->v with the given capacity and returns
// its handle for later Flow queries.
func (g *Graph) AddEdge(u, v, capacity int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge %d->%d outside %d nodes", u, v, g.n))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: int32(v), cap: int32(capacity), orig: int32(capacity)})
	g.adj[u] = append(g.adj[u], int32(id))
	g.edges = append(g.edges, edge{to: int32(u), cap: 0, orig: 0}) // reverse
	g.adj[v] = append(g.adj[v], int32(id+1))
	return id
}

// MaxFlow computes the maximum s-t flow (Edmonds-Karp: BFS augmenting
// paths, O(V·E²)).
func (g *Graph) MaxFlow(s, t int) int {
	if s == t {
		return 0
	}
	total := 0
	parent := make([]int32, g.n) // edge index used to reach node
	queue := make([]int32, 0, g.n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue = append(queue[:0], int32(s))
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ei := range g.adj[u] {
				e := &g.edges[ei]
				if e.cap > 0 && parent[e.to] == -1 {
					parent[e.to] = ei
					if int(e.to) == t {
						found = true
						break bfs
					}
					queue = append(queue, e.to)
				}
			}
		}
		if !found {
			return total
		}
		// Find the bottleneck along the path.
		aug := int32(1<<31 - 1)
		for v := int32(t); v != int32(s); {
			ei := parent[v]
			if g.edges[ei].cap < aug {
				aug = g.edges[ei].cap
			}
			v = g.edges[ei^1].to // reverse edge points back
		}
		for v := int32(t); v != int32(s); {
			ei := parent[v]
			g.edges[ei].cap -= aug
			g.edges[ei^1].cap += aug
			v = g.edges[ei^1].to
		}
		total += int(aug)
	}
}

// Flow reports the flow pushed through the edge returned by AddEdge.
func (g *Graph) Flow(id int) int {
	return int(g.edges[id].orig - g.edges[id].cap)
}

// Assignment is the result of assigning samplers to streams.
type Assignment struct {
	// ByUnit[u] lists the stream indices unit u samples this epoch.
	ByUnit [][]int
	// Uncovered lists stream indices no sampler could cover.
	Uncovered []int
	// Covered is the number of streams assigned.
	Covered int
}

// AssignSamplers solves the §V-B problem: accessedBy[s] lists the units
// that accessed stream index s this epoch; each unit owns samplersPerUnit
// samplers, each able to monitor one stream accessed by that unit.
// Stream indices are dense [0, len(accessedBy)).
func AssignSamplers(numUnits int, accessedBy [][]int, samplersPerUnit int) Assignment {
	caps := make([]int, numUnits)
	for i := range caps {
		caps[i] = samplersPerUnit
	}
	return AssignSamplersCapacity(numUnits, accessedBy, caps)
}

// AssignSamplersCapacity is AssignSamplers with per-unit sampler budgets,
// used by the multi-epoch rotation of §V-B: when not all streams can be
// covered in one epoch, the runtime first assigns last epoch's uncovered
// streams and then fills the remaining sampler slots.
func AssignSamplersCapacity(numUnits int, accessedBy [][]int, capacity []int) Assignment {
	numStreams := len(accessedBy)
	a := Assignment{ByUnit: make([][]int, numUnits)}
	if numStreams == 0 {
		return a
	}
	// Nodes: 0 = source, 1..numUnits = units, then streams, then sink.
	src := 0
	unitNode := func(u int) int { return 1 + u }
	streamNode := func(s int) int { return 1 + numUnits + s }
	sink := 1 + numUnits + numStreams

	g := NewGraph(sink + 1)
	for u := 0; u < numUnits; u++ {
		g.AddEdge(src, unitNode(u), capacity[u])
	}
	type usEdge struct {
		unit, str, id int
	}
	var mids []usEdge
	for s, units := range accessedBy {
		for _, u := range units {
			if u < 0 || u >= numUnits {
				panic(fmt.Sprintf("maxflow: unit %d out of range", u))
			}
			id := g.AddEdge(unitNode(u), streamNode(s), 1)
			mids = append(mids, usEdge{unit: u, str: s, id: id})
		}
		g.AddEdge(streamNode(s), sink, 1)
	}
	a.Covered = g.MaxFlow(src, sink)

	covered := make([]bool, numStreams)
	for _, m := range mids {
		if g.Flow(m.id) > 0 {
			a.ByUnit[m.unit] = append(a.ByUnit[m.unit], m.str)
			covered[m.str] = true
		}
	}
	for s := 0; s < numStreams; s++ {
		if !covered[s] && len(accessedBy[s]) > 0 {
			a.Uncovered = append(a.Uncovered, s)
		}
	}
	for u := range a.ByUnit {
		sort.Ints(a.ByUnit[u])
	}
	return a
}
