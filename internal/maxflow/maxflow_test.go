package maxflow

import (
	"testing"
	"testing/quick"

	"ndpext/internal/sim"
)

func TestSimpleFlow(t *testing.T) {
	// s -> a -> t with capacity 3, plus s -> b -> t with capacity 2.
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 3, 3)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	if f := g.MaxFlow(0, 3); f != 5 {
		t.Fatalf("flow = %d, want 5", f)
	}
}

func TestBottleneck(t *testing.T) {
	// s -> a (10), a -> b (1), b -> t (10): bottleneck 1.
	g := NewGraph(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 10)
	if f := g.MaxFlow(0, 3); f != 1 {
		t.Fatalf("flow = %d, want 1", f)
	}
}

func TestAugmentingPathThroughReverseEdge(t *testing.T) {
	// Classic diamond requiring flow cancellation:
	// s->a(1), s->b(1), a->b(1), a->t(1), b->t(1): max flow 2.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if f := g.MaxFlow(0, 3); f != 2 {
		t.Fatalf("flow = %d, want 2", f)
	}
}

func TestFlowReporting(t *testing.T) {
	g := NewGraph(3)
	e1 := g.AddEdge(0, 1, 4)
	e2 := g.AddEdge(1, 2, 3)
	if f := g.MaxFlow(0, 2); f != 3 {
		t.Fatalf("flow = %d", f)
	}
	if g.Flow(e1) != 3 || g.Flow(e2) != 3 {
		t.Fatalf("edge flows %d/%d, want 3/3", g.Flow(e1), g.Flow(e2))
	}
}

func TestSelfFlowIsZero(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 5)
	if g.MaxFlow(0, 0) != 0 {
		t.Fatal("s == t flow not zero")
	}
}

func TestAssignSamplersExampleFromFig4a(t *testing.T) {
	// Paper Fig. 4(a): unit 0 accesses streams 0 and 1; unit 1 accesses
	// streams 1 and 2; unit 2 accesses streams 2 and 3. All four streams
	// can be covered even with 2 samplers per unit.
	accessedBy := [][]int{
		{0},    // stream 0
		{0, 1}, // stream 1
		{1, 2}, // stream 2
		{2},    // stream 3
	}
	a := AssignSamplers(3, accessedBy, 2)
	if a.Covered != 4 || len(a.Uncovered) != 0 {
		t.Fatalf("covered %d, uncovered %v", a.Covered, a.Uncovered)
	}
	// Constraint: a unit samples only streams it accesses, and at most 2.
	for u, sids := range a.ByUnit {
		if len(sids) > 2 {
			t.Fatalf("unit %d assigned %d streams", u, len(sids))
		}
		for _, s := range sids {
			ok := false
			for _, au := range accessedBy[s] {
				if au == u {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("unit %d assigned stream %d it never accessed", u, s)
			}
		}
	}
}

func TestAssignSamplersOverload(t *testing.T) {
	// One unit, one sampler, three streams: only one can be covered.
	accessedBy := [][]int{{0}, {0}, {0}}
	a := AssignSamplers(1, accessedBy, 1)
	if a.Covered != 1 || len(a.Uncovered) != 2 {
		t.Fatalf("covered %d uncovered %v", a.Covered, a.Uncovered)
	}
}

func TestAssignSamplersUnaccessedStream(t *testing.T) {
	accessedBy := [][]int{{0}, {}} // stream 1 accessed by nobody
	a := AssignSamplers(1, accessedBy, 4)
	if a.Covered != 1 {
		t.Fatalf("covered = %d", a.Covered)
	}
	// A stream nobody accessed is not reported as uncovered (there is
	// nothing to sample).
	if len(a.Uncovered) != 0 {
		t.Fatalf("uncovered = %v", a.Uncovered)
	}
}

func TestAssignSamplersEmpty(t *testing.T) {
	a := AssignSamplers(4, nil, 4)
	if a.Covered != 0 || len(a.Uncovered) != 0 {
		t.Fatalf("empty assignment: %+v", a)
	}
}

// Property: each unit never exceeds its sampler budget, every assignment
// respects access constraints, and coverage equals streams minus
// uncovered.
func TestAssignSamplersProperty(t *testing.T) {
	rng := sim.NewRNG(99)
	f := func(seed uint32) bool {
		r := rng.Split(uint64(seed))
		numUnits := 1 + r.Intn(8)
		numStreams := r.Intn(20)
		per := 1 + r.Intn(4)
		accessedBy := make([][]int, numStreams)
		accessible := 0
		for s := range accessedBy {
			k := r.Intn(numUnits + 1)
			seen := map[int]bool{}
			for i := 0; i < k; i++ {
				seen[r.Intn(numUnits)] = true
			}
			for u := range seen {
				accessedBy[s] = append(accessedBy[s], u)
			}
			if len(accessedBy[s]) > 0 {
				accessible++
			}
		}
		a := AssignSamplers(numUnits, accessedBy, per)
		total := 0
		for u, sids := range a.ByUnit {
			if len(sids) > per {
				return false
			}
			total += len(sids)
			for _, s := range sids {
				ok := false
				for _, au := range accessedBy[s] {
					if au == u {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return total == a.Covered && a.Covered+len(a.Uncovered) == accessible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero nodes":   func() { NewGraph(0) },
		"bad edge":     func() { NewGraph(2).AddEdge(0, 5, 1) },
		"negative cap": func() { NewGraph(2).AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAssignSamplersCapacityRespectsBudgets(t *testing.T) {
	// Unit 0 has no samplers left; unit 1 has one: only one stream can
	// be covered, and it must be assigned to unit 1.
	accessedBy := [][]int{{0, 1}, {0}}
	a := AssignSamplersCapacity(2, accessedBy, []int{0, 1})
	if a.Covered != 1 {
		t.Fatalf("covered = %d, want 1", a.Covered)
	}
	if len(a.ByUnit[0]) != 0 {
		t.Fatal("stream assigned to a unit with zero budget")
	}
	if len(a.ByUnit[1]) != 1 || a.ByUnit[1][0] != 0 {
		t.Fatalf("assignment = %v", a.ByUnit)
	}
	if len(a.Uncovered) != 1 || a.Uncovered[0] != 1 {
		t.Fatalf("uncovered = %v, want [1]", a.Uncovered)
	}
}
