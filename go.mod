module ndpext

go 1.22
