// Package ndpext is a from-scratch reproduction of "Stream-Based Data
// Placement for Near-Data Processing with Extended Memory" (MICRO 2024):
// NDPExt, a hardware-software co-design that manages the DRAM of
// 3D-stacked NDP units as a distributed, stream-granularity cache in
// front of CXL-attached extended memory.
//
// The package is a façade over the full system:
//
//   - a cycle-approximate simulator of the Table II machine (128 in-order
//     NDP cores in 8 stacks, HBM3/HMC2 stack memory, mesh interconnect,
//     CXL.mem extended memory),
//   - the NDPExt stream cache (SLB, affine tag array, embedded-tag
//     indirect caching, per-stream replication groups, consistent-hash
//     placement),
//   - the host runtime (set-based miss-curve samplers, max-flow sampler
//     assignment, the Algorithm 1 configuration optimizer),
//   - the baselines the paper compares against (Jigsaw, Whirlpool, Nexus,
//     static interleaving, and a non-NDP host), and
//   - the paper's 13 evaluation workloads plus a Builder for custom ones.
//
// Quick start:
//
//	tr, _ := ndpext.GenerateTrace("recsys", 128, 1)
//	res, _ := ndpext.Simulate(ndpext.DefaultConfig(ndpext.DesignNDPExt), tr)
//	fmt.Println(res.Time, res.CacheHitRate())
package ndpext

import (
	"ndpext/internal/bench"
	"ndpext/internal/sim"
	"ndpext/internal/stream"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// Duration is simulated time (picosecond resolution); FromNS converts
// nanoseconds, e.g. cfg.CXL.LinkLatency = ndpext.FromNS(400).
type Duration = sim.Time

// FromNS converts nanoseconds to simulated time.
func FromNS(ns float64) Duration { return sim.FromNS(ns) }

// Design selects the cache-management scheme to simulate.
type Design = system.Design

// The designs evaluated in the paper's Fig. 5.
const (
	DesignNDPExt       = system.NDPExt
	DesignNDPExtStatic = system.NDPExtStatic
	DesignNexus        = system.Nexus
	DesignWhirlpool    = system.Whirlpool
	DesignJigsaw       = system.Jigsaw
	DesignStatic       = system.StaticInterleave
	DesignHost         = system.Host
)

// Config describes a simulated machine (Table II defaults at model
// scale); Result is one run's outcome.
type (
	Config = system.Config
	Result = system.Result
)

// Trace is a workload: stream annotations plus per-core access traces.
// Stream is one annotated data structure (the paper's Table I metadata);
// Builder constructs custom traces against the stream API.
type (
	Trace   = workloads.Trace
	Stream  = stream.Stream
	Builder = workloads.Builder
)

// Access orders for multi-dimensional affine streams (the 3-bit `order`
// argument of configure_stream).
const (
	OrderXYZ = stream.OrderXYZ
	OrderYXZ = stream.OrderYXZ
	OrderXZY = stream.OrderXZY
	OrderZYX = stream.OrderZYX
	OrderYZX = stream.OrderYZX
	OrderZXY = stream.OrderZXY
)

// DefaultConfig returns the paper's Table II machine (HBM3-style NDP
// memory) configured for the given design.
func DefaultConfig(d Design) Config { return system.DefaultConfig(d) }

// HMCConfig returns the HMC2-style variant (Fig. 5(b)).
func HMCConfig(d Design) Config { return system.HMCConfig(d) }

// Designs lists the NDP designs in the paper's plotting order.
func Designs() []Design { return system.NDPDesigns() }

// Workloads lists the built-in workloads: the paper's 13 evaluation
// kernels plus the phase-changing `phased` trace for the adaptive
// (NDPExt-MAB) experiments.
func Workloads() []string { return workloads.Names() }

// GenerateTrace builds one of the built-in workloads for a machine with
// the given core count, at the default model scale.
func GenerateTrace(name string, cores int, seed uint64) (*Trace, error) {
	gen, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	return gen(cores, seed, workloads.DefaultScale())
}

// GenerateTraceN is GenerateTrace with an explicit per-core access
// budget (shorter traces run faster; longer ones stress capacity more).
func GenerateTraceN(name string, cores int, seed uint64, accessesPerCore int) (*Trace, error) {
	gen, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = accessesPerCore
	return gen(cores, seed, sc)
}

// NewBuilder starts a custom workload trace (see Builder).
func NewBuilder(name string, cores, accessesPerCore int) *Builder {
	return workloads.NewBuilder(name, cores, accessesPerCore)
}

// SaveTrace writes a trace to a file so expensive generated workloads
// can be replayed across runs; LoadTrace reads it back.
func SaveTrace(tr *Trace, path string) error { return tr.SaveFile(path) }

// LoadTrace reads a trace written by SaveTrace.
func LoadTrace(path string) (*Trace, error) { return workloads.LoadFile(path) }

// Simulate runs the trace on the configured machine.
func Simulate(cfg Config, tr *Trace) (*Result, error) {
	return system.Run(cfg, tr)
}

// Experiments exposes the paper's evaluation harness (one function per
// figure); see the internal/bench package and cmd/experiments.
type Experiments = bench.Options

// QuickExperiments returns a reduced experiment scale for fast runs.
func QuickExperiments() Experiments { return bench.Quick() }

// FullExperiments returns the full 13-workload matrix.
func FullExperiments() Experiments { return bench.Default() }
