// Command ndpserve exposes the simulator as a long-running HTTP/JSON
// service: submit jobs, poll status, stream live progress over SSE, and
// share results through a content-addressed cache that survives
// restarts.
//
// Usage:
//
//	ndpserve [-addr :8080] [-workers N] [-queue 64]
//	         [-cache-entries 1024] [-cache-ttl 0]
//	         [-cache-index /path/to/index.json]
//	         [-max-wall 0] [-max-cycles 0] [-retry-after 1s]
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops, queued
// and running jobs finish (running ones are checkpointed if -drain-wait
// expires), and the cache index is persisted for a warm restart.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"ndpext/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndpserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job bound before 429 backpressure")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache capacity (LRU)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0: never expires)")
	cacheIndex := flag.String("cache-index", "", "persist the cache index here on drain; warm-load it on start")
	maxWall := flag.Duration("max-wall", 0, "default per-job wall-clock watchdog (0 disables)")
	maxCycles := flag.Int64("max-cycles", 0, "default per-job simulated-cycle watchdog (0 disables)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint returned with 429")
	traceDir := flag.String("trace-dir", "", "directory of recorded trace files; enables trace-backed jobs (\"trace\" in the job spec)")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "grace period for running jobs on shutdown before checkpointing")
	flag.Parse()

	srv, err := server.New(server.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheTTL:     *cacheTTL,
		CachePath:    *cacheIndex,
		RetryAfter:   *retryAfter,
		MaxWall:      *maxWall,
		MaxCycles:    *maxCycles,
		TraceDir:     *traceDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	if n := srv.CacheStats().Entries; n > 0 {
		log.Printf("warm-loaded %d cached results from %s", n, *cacheIndex)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining (grace %v)", *drainWait)

	// Stop the listener first so no new submissions race the drain, then
	// let the engine finish or checkpoint every accepted job.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), *drainWait)
	defer cancel2()
	if err := srv.Drain(drainCtx); err != nil {
		log.Fatal(err)
	}
	if *cacheIndex != "" {
		log.Printf("cache index persisted to %s (%d entries)", *cacheIndex, srv.CacheStats().Entries)
	}
	log.Printf("drained cleanly")
}
