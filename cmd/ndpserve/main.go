// Command ndpserve exposes the simulator as a long-running HTTP/JSON
// service: submit jobs or whole design×workload batch matrices, poll
// status, stream live progress over SSE, and share results through a
// content-addressed cache that survives restarts.
//
// The process is thin wiring of the three serving layers:
// internal/server/store (result store + trace registry),
// internal/server/scheduler (queue, worker pool, batch DAG), and
// internal/server/transport (HTTP/JSON/SSE).
//
// Usage:
//
//	ndpserve [-addr :8080] [-workers N] [-queue 64]
//	         [-cache-entries 1024] [-cache-ttl 0]
//	         [-cache-index /path/to/index.json]
//	         [-max-wall 0] [-max-cycles 0]
//	         [-retry-after 1s] [-retry-after-max 60s]
//	         [-max-body 1048576] [-read-header-timeout 10s]
//	         [-peers URL,URL,... -self URL] [-vnodes 64] [-max-hops 2]
//	         [-probe-interval 2s] [-down-after 3] [-replicate=true]
//
// With -peers (a static member list that must be identical on every
// node and contain -self), the process joins an ndpserve cluster: a
// consistent-hash ring routes each content-addressed submission to its
// owning peer, any node accepts work for the whole service, batch
// matrices fan out across the ring, and completed results replicate to
// the ring successor so one peer death loses no finished work.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops, queued
// and running jobs finish (running ones are checkpointed if -drain-wait
// expires), and the cache index is persisted for a warm restart.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndpext/internal/cluster"
	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/server/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndpserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job bound before 429 backpressure")
	cacheEntries := flag.Int("cache-entries", 1024, "result cache capacity (LRU)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0: never expires)")
	cacheIndex := flag.String("cache-index", "", "persist the cache index here on drain; warm-load it on start")
	maxWall := flag.Duration("max-wall", 0, "default per-job wall-clock watchdog (0 disables)")
	maxCycles := flag.Int64("max-cycles", 0, "default per-job simulated-cycle watchdog (0 disables)")
	retryAfter := flag.Duration("retry-after", time.Second, "floor of the adaptive Retry-After hint returned with 429")
	retryAfterMax := flag.Duration("retry-after-max", 60*time.Second, "ceiling of the adaptive Retry-After hint")
	traceDir := flag.String("trace-dir", "", "directory of recorded trace files; enables trace-backed jobs (\"trace\" in the job spec)")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "grace period for running jobs on shutdown before checkpointing")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes (oversized submissions get 413)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "slow-loris guard: deadline for reading request headers")
	peers := flag.String("peers", "", "comma-separated cluster member URLs (identical on every node; must include -self); empty runs single-node")
	self := flag.String("self", "", "this node's advertised base URL within -peers")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per peer on the consistent-hash ring")
	maxHops := flag.Int("max-hops", 2, "forwarding-chain bound before a node runs a submission locally")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "cluster health-probe period")
	downAfter := flag.Int("down-after", 3, "consecutive failed probes before a peer is down (ownership moves to its successor)")
	replicate := flag.Bool("replicate", true, "replicate completed results to the ring successor")
	parallel := flag.Int("parallel", 1, "run each simulation epoch-pipelined when >= 2 (byte-identical to serial; see internal/parallel)")
	flag.Parse()

	st, err := store.Open(store.Options{
		Entries: *cacheEntries,
		TTL:     *cacheTTL,
		Path:    *cacheIndex,
	})
	if err != nil {
		log.Fatal(err)
	}

	// In cluster mode the node is built first: the scheduler needs its
	// per-node job-ID prefix and its replication hook.
	var node *cluster.Node
	if *peers != "" {
		node, err = cluster.NewNode(cluster.Config{
			Self:        *self,
			Peers:       strings.Split(*peers, ","),
			VNodes:      *vnodes,
			MaxHops:     *maxHops,
			NoReplicate: !*replicate,
			Membership: cluster.MembershipOptions{
				ProbeInterval: *probeInterval,
				DownAfter:     *downAfter,
				Logf:          log.Printf,
			},
			Logf: log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	schedOpt := scheduler.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		RetryAfter:    *retryAfter,
		RetryAfterMax: *retryAfterMax,
		MaxWall:       *maxWall,
		MaxCycles:     *maxCycles,
		Parallel:      *parallel,
	}
	if node != nil {
		schedOpt.IDPrefix = node.IDPrefix()
		schedOpt.OnStored = node.OnStored
	}
	sched := scheduler.New(st, store.NewTraceRegistry(*traceDir), schedOpt)
	sched.Start()
	if n := st.Stats().Entries; n > 0 {
		log.Printf("warm-loaded %d cached results from %s", n, *cacheIndex)
	}

	topt := transport.Options{MaxBody: *maxBody}
	if node != nil {
		topt.Cluster = node.InfoDoc
		topt.OwnerOf = node.OwnerOf
	}
	var handler http.Handler = transport.NewHandler(sched, topt)
	if node != nil {
		node.Bind(sched)
		handler = cluster.NewHandler(node, handler)
		node.Start()
		log.Printf("cluster mode: self=%s ring=%d peers, %d vnodes", *self, node.Ring().Size(), node.Ring().VNodes())
	}

	// No WriteTimeout: SSE streams are long-lived by design. Body size is
	// capped per-request by the transport layer instead.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining (grace %v)", *drainWait)

	// Stop the listener first so no new submissions race the drain, then
	// let the engine finish or checkpoint every accepted job.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	drainCtx, cancel2 := context.WithTimeout(context.Background(), *drainWait)
	defer cancel2()
	if err := sched.Drain(drainCtx); err != nil {
		log.Fatal(err)
	}
	if node != nil {
		// After the drain: final completions replicate; then the prober
		// and any in-flight pushes stop.
		node.Close()
	}
	if *cacheIndex != "" {
		log.Printf("cache index persisted to %s (%d entries)", *cacheIndex, st.Stats().Entries)
	}
	log.Printf("drained cleanly")
}
