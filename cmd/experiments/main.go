// Command experiments regenerates the paper's evaluation tables and
// figures on the simulated machines.
//
// Usage:
//
//	experiments -fig 5a            # one figure
//	experiments -all               # the whole matrix
//	experiments -quick -fig 5a     # subset workloads, shorter traces
//	experiments -trace run.ndptrc  # sweep all designs over a recorded trace
//
// Figures: 2, 4b, 5a, 5b, 6, 7, 8a, 8b, 9a..9f, vd (consistent hashing),
// meta (metadata hit rates), faults (degraded-mode sweep), adapt
// (NDPExt-MAB vs fixed arms on the phased workload). With -trace,
// the figure matrix is replaced by a design sweep replaying the given
// trace file (recorded with ndpsim -record or imported with ndptrace
// convert) on every machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndpext/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	fig := flag.String("fig", "", "figure to reproduce (2, 4b, 5a, 5b, 6, 7, 8a, 8b, 9a-9f, vd, meta, faults, adapt)")
	all := flag.Bool("all", false, "run the full matrix")
	quick := flag.Bool("quick", false, "reduced workload set and trace length")
	accesses := flag.Int("accesses", 0, "override per-core access budget")
	asJSON := flag.Bool("json", false, "emit tables as JSON")
	tracePath := flag.String("trace", "", "replay this recorded trace file across all designs instead of the figure matrix")
	flag.Parse()

	opt := bench.Default()
	if *quick {
		opt = bench.Quick()
	}
	if *accesses > 0 {
		opt.AccessesPerCore = *accesses
	}

	// ^C / SIGTERM cancels in-flight simulations cooperatively: the
	// current figure aborts mid-matrix instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	opt.Ctx = ctx

	if *tracePath != "" {
		tbl, err := bench.TraceSweep(*tracePath, opt)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			out, err := tbl.JSON()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(string(out))
		} else {
			fmt.Print(tbl.String())
		}
		return
	}

	figs := []string{"2", "4b", "5a", "5b", "6", "7", "8a", "8b",
		"9a", "9b", "9c", "9d", "9e", "9f", "vd", "meta", "attach", "waypred", "faults", "adapt"}
	if !*all {
		if *fig == "" {
			log.Fatal("pass -fig <id> or -all")
		}
		figs = []string{strings.ToLower(*fig)}
	}

	// One failing figure must not kill the rest of the matrix: report it,
	// keep going, and exit non-zero at the end.
	failed := 0
	for _, f := range figs {
		if ctx.Err() != nil {
			log.Fatalf("interrupted; skipping remaining figures")
		}
		start := time.Now()
		tbl, err := dispatch(f, opt)
		if ctx.Err() != nil {
			log.Fatalf("interrupted during fig %s", f)
		}
		if err != nil {
			log.Printf("fig %s: %v", f, err)
			failed++
			continue
		}
		if *asJSON {
			out, err := tbl.JSON()
			if err != nil {
				log.Printf("fig %s: %v", f, err)
				failed++
				continue
			}
			fmt.Println(string(out))
		} else {
			fmt.Print(tbl.String())
			fmt.Printf("(%s in %v)\n\n", f, time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		log.Printf("%d of %d figures failed", failed, len(figs))
		os.Exit(1)
	}
}

func dispatch(fig string, opt bench.Options) (bench.Table, error) {
	switch fig {
	case "2":
		return bench.Fig2(opt)
	case "4b":
		tbl, _ := bench.Fig4b()
		return tbl, nil
	case "5a":
		tbl, _, _, err := bench.Fig5(false, opt)
		return tbl, err
	case "5b":
		tbl, _, _, err := bench.Fig5(true, opt)
		return tbl, err
	case "6":
		tbl, _, err := bench.Fig6(opt)
		return tbl, err
	case "7":
		return bench.Fig7(opt)
	case "8a":
		tbl, _, err := bench.Fig8a(opt)
		return tbl, err
	case "8b":
		tbl, _, err := bench.Fig8b(opt)
		return tbl, err
	case "9a":
		tbl, _, err := bench.Fig9a(opt)
		return tbl, err
	case "9b":
		tbl, _, err := bench.Fig9b(opt)
		return tbl, err
	case "9c":
		tbl, _, err := bench.Fig9c(opt)
		return tbl, err
	case "9d":
		tbl, _, err := bench.Fig9d(opt)
		return tbl, err
	case "9e":
		tbl, _, err := bench.Fig9e(opt)
		return tbl, err
	case "9f":
		tbl, _, err := bench.Fig9f(opt)
		return tbl, err
	case "vd":
		tbl, _, _, err := bench.SecVD(opt)
		return tbl, err
	case "meta":
		return bench.MetaHitRates(opt)
	case "attach":
		tbl, _, err := bench.AblationExtAttach(opt)
		return tbl, err
	case "waypred":
		tbl, _, err := bench.AblationWayPredict(opt)
		return tbl, err
	case "faults":
		return bench.FaultSweep(opt)
	case "adapt":
		tbl, _, err := bench.AdaptSweep(opt)
		return tbl, err
	default:
		return bench.Table{}, fmt.Errorf("unknown figure %q", fig)
	}
}
