// Command ndptrace inspects, validates, slices, and imports memory-
// access trace files in the native format (see internal/trace).
//
// Usage:
//
//	ndptrace info file.ndptrc
//	ndptrace stats file.ndptrc
//	ndptrace validate file.ndptrc
//	ndptrace slice -from 1000 -to 5000 -o out.ndptrc file.ndptrc
//	ndptrace convert [-name pr] [-cores 8] [-chunk 4096] [-raw] \
//	    -o out.ndptrc accesses.csv|accesses.jsonl
//
// Trace files are recorded from live runs with `ndpsim -record=FILE`
// and replayed with `ndpsim -load-trace=FILE`; convert imports external
// CSV/JSONL access logs (DAMOV-style dumps) and infers stream
// annotations from the address footprint.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ndpext/internal/stream"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndptrace: ")
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "info":
		err = runInfo(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "slice":
		err = runSlice(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Fatalf("unknown subcommand %q (want info, stats, validate, slice, or convert)", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: ndptrace <subcommand> [flags] FILE

  info      print trace metadata (name, cores, accesses, streams, digest)
  stats     print access statistics (reads/writes, footprint, stream coverage)
  validate  decode and CRC-check every chunk
  slice     extract the per-core access window [-from,-to) into -o
  convert   import a CSV/JSONL access log into the native format
`)
	os.Exit(2)
}

// open parses flags, expects exactly one positional FILE, and opens it.
func open(fs *flag.FlagSet, args []string) (*trace.Reader, string, error) {
	fs.Parse(args)
	if fs.NArg() != 1 {
		return nil, "", fmt.Errorf("%s wants exactly one trace file, got %d arguments", fs.Name(), fs.NArg())
	}
	path := fs.Arg(0)
	r, err := trace.OpenFile(path)
	return r, path, err
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	r, path, err := open(fs, args)
	if err != nil {
		return err
	}
	defer r.Close()
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	digest, err := trace.DigestFile(path)
	if err != nil {
		return err
	}
	compression := "none"
	if r.Compressed() {
		compression = "flate"
	}
	fmt.Printf("name         %s\n", r.Name())
	fmt.Printf("cores        %d\n", r.Cores())
	fmt.Printf("accesses     %d\n", r.Accesses())
	fmt.Printf("chunks       %d x %d accesses\n", r.Chunks(), r.ChunkAccesses())
	fmt.Printf("compression  %s\n", compression)
	fmt.Printf("file         %d bytes (%.2f bytes/access)\n", st.Size(), perAccess(st.Size(), r.Accesses()))
	fmt.Printf("sha256       %s\n", digest)
	streams := r.Streams()
	fmt.Printf("streams      %d\n", len(streams))
	for i := range streams {
		fmt.Printf("  %v\n", &streams[i])
	}
	counts := r.PerCoreCounts()
	lo, hi := counts[0], counts[0]
	for _, n := range counts {
		lo, hi = min(lo, n), max(hi, n)
	}
	fmt.Printf("per-core     min %d, max %d accesses\n", lo, hi)
	return nil
}

func perAccess(size int64, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(size) / float64(n)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	r, _, err := open(fs, args)
	if err != nil {
		return err
	}
	defer r.Close()
	src, err := r.Source()
	if err != nil {
		return err
	}
	table := src.Table()
	var reads, writes, inStream, gapSum uint64
	lines := make(map[uint64]struct{})
	perStream := make(map[stream.ID]uint64)
	for c := 0; c < src.Cores(); c++ {
		for {
			a, ok := src.Next(c)
			if !ok {
				break
			}
			if a.Write {
				writes++
			} else {
				reads++
			}
			gapSum += uint64(a.Gap)
			lines[a.Addr&^63] = struct{}{}
			if s := table.FindByAddr(a.Addr); s != nil {
				inStream++
				perStream[s.SID]++
			}
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	total := reads + writes
	fmt.Printf("accesses     %d (%d reads, %d writes)\n", total, reads, writes)
	if total > 0 {
		fmt.Printf("write ratio  %.1f%%\n", 100*float64(writes)/float64(total))
		fmt.Printf("avg gap      %.2f cycles\n", float64(gapSum)/float64(total))
		fmt.Printf("stream cover %.1f%% of accesses inside a configured stream\n",
			100*float64(inStream)/float64(total))
	}
	fmt.Printf("footprint    %d unique 64B lines (%d bytes touched)\n", len(lines), uint64(len(lines))*64)
	for _, s := range table.All() {
		fmt.Printf("  stream %3d %-8s [%#x,+%d) accesses=%d\n",
			s.SID, s.Type, s.Base, s.Size, perStream[s.SID])
	}
	return nil
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	r, path, err := open(fs, args)
	if err != nil {
		return err
	}
	defer r.Close()
	if err := r.Validate(); err != nil {
		return err
	}
	fmt.Printf("%s: OK (%d accesses in %d chunks, all CRCs verified)\n", path, r.Accesses(), r.Chunks())
	return nil
}

func runSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ExitOnError)
	from := fs.Uint64("from", 0, "first per-core access index (inclusive)")
	to := fs.Uint64("to", 0, "last per-core access index (exclusive)")
	out := fs.String("o", "", "output trace file (required)")
	r, _, err := open(fs, args)
	if err != nil {
		return err
	}
	defer r.Close()
	if *out == "" {
		return fmt.Errorf("slice needs -o OUTPUT")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := r.Slice(f, *from, *to); err != nil {
		f.Close()
		os.Remove(*out)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	sr, err := trace.OpenFile(*out)
	if err != nil {
		return err
	}
	defer sr.Close()
	fmt.Printf("sliced [%d,%d) -> %s (%d accesses)\n", *from, *to, *out, sr.Accesses())
	return nil
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	name := fs.String("name", "", "workload name (default: log file base name)")
	cores := fs.Int("cores", 0, "core count (0 infers from the log)")
	chunk := fs.Int("chunk", 0, "accesses per chunk (0 = default)")
	raw := fs.Bool("raw", false, "disable flate compression")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("convert wants exactly one log file, got %d arguments", fs.NArg())
	}
	if *out == "" {
		return fmt.Errorf("convert needs -o OUTPUT")
	}
	tr, err := trace.ConvertFile(fs.Arg(0), trace.ConvertOptions{Name: *name, Cores: *cores})
	if err != nil {
		return err
	}
	if err := writeTraceFile(*out, tr, *chunk, !*raw); err != nil {
		return err
	}
	fmt.Printf("imported %s: %d accesses on %d cores, %d inferred streams -> %s\n",
		tr.Name, tr.TotalAccesses(), len(tr.PerCore), tr.Table.Len(), *out)
	return nil
}

func writeTraceFile(path string, tr *workloads.Trace, chunk int, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteTrace(f, tr, chunk, compress); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}
