// Command ndpreport diffs two experiment result files produced by
// `experiments -json`, printing per-cell relative changes — the
// regression-tracking companion to cmd/experiments.
//
// Usage:
//
//	experiments -json -fig 5a > before.json
//	... change something ...
//	experiments -json -fig 5a > after.json
//	ndpreport before.json after.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"ndpext/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndpreport: ")
	threshold := flag.Float64("threshold", 0.0, "only print cells changing by at least this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatal("usage: ndpreport [-threshold 0.05] before.json after.json")
	}

	before, err := readFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	after, err := readFile(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}

	byTitle := map[string]bench.Table{}
	for _, t := range before {
		byTitle[t.Title] = t
	}
	matched := 0
	for _, ta := range after {
		tb, ok := byTitle[ta.Title]
		if !ok {
			fmt.Printf("== %s == (only in after)\n", ta.Title)
			continue
		}
		matched++
		cmp, err := bench.CompareTables(tb, ta)
		if err != nil {
			log.Fatal(err)
		}
		if *threshold > 0 {
			var kept []bench.Delta
			for _, d := range cmp.Deltas {
				if math.Abs(d.Rel()) >= *threshold {
					kept = append(kept, d)
				}
			}
			cmp.Deltas = kept
		}
		fmt.Print(cmp.String())
		fmt.Println()
	}
	if matched == 0 {
		log.Fatal("no experiments in common between the two files")
	}
}

func readFile(path string) ([]bench.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.ReadTables(f)
}
