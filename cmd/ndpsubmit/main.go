// Command ndpsubmit submits simulation jobs to an ndpserve instance
// through the resilient client: jittered exponential backoff honoring
// Retry-After on 429/5xx, safe idempotent resubmission when the server
// restarts mid-wait (submissions are content-addressed, so a retry can
// only hit the cache or re-run the identical simulation), and SSE
// progress streaming with automatic reconnect.
//
// Usage:
//
//	ndpsubmit [-server http://localhost:8080] [-peer URL]...
//	          [-spec JSON | -f file]
//	          [-batch] [-follow] [-attempts 5] [-timeout 0]
//
// The spec is a JobSpec (or, with -batch, a BatchSpec) in the server's
// POST /v1/jobs (or /v1/batch) wire format; with neither -spec nor -f
// it is read from stdin. The terminal result document is printed to
// stdout; -follow additionally streams progress events to stderr.
//
// -peer may repeat to name the members of an ndpserve cluster; they
// are tried in order, moving to the next only on transport-level
// failure (an unreachable or retry-exhausted peer). Any reachable
// member serves the whole cluster — it runs or forwards by content
// address — so order is preference, not placement. A server's
// authoritative verdict (4xx/5xx response) ends the attempt without
// trying further peers. When -peer is given, -server is ignored.
//
// Exit status: 0 when the job (every cell, with -batch) completed, 1
// when it failed or was truncated, 2 on usage or transport errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ndpext/internal/client"
	"ndpext/internal/server/scheduler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndpsubmit: ")

	server := flag.String("server", "http://localhost:8080", "ndpserve base URL")
	var peerList peerFlag
	flag.Var(&peerList, "peer", "cluster member base URL; repeatable, tried in order (overrides -server)")
	specArg := flag.String("spec", "", "job spec JSON inline (default: read from -f or stdin)")
	specFile := flag.String("f", "", "read the spec JSON from this file")
	batch := flag.Bool("batch", false, "the spec is a BatchSpec matrix for POST /v1/batch")
	follow := flag.Bool("follow", false, "stream SSE progress events to stderr while waiting")
	attempts := flag.Int("attempts", 5, "max tries per request (and per vanished-job resubmission)")
	baseDelay := flag.Duration("base-delay", 200*time.Millisecond, "first retry backoff step")
	maxDelay := flag.Duration("max-delay", 10*time.Second, "retry backoff ceiling")
	timeout := flag.Duration("timeout", 0, "overall deadline for submit+await (0: none)")
	quiet := flag.Bool("q", false, "suppress retry/progress logging")
	flag.Parse()

	raw, err := readSpec(*specArg, *specFile)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := client.Options{
		MaxAttempts: *attempts,
		BaseDelay:   *baseDelay,
		MaxDelay:    *maxDelay,
	}
	if !*quiet {
		opt.Logf = log.Printf
	}

	servers := []string(peerList)
	if len(servers) == 0 {
		servers = []string{*server}
	}
	var code int
	for i, base := range servers {
		code, err = run(ctx, client.New(base, opt), raw, *batch, *follow)
		// Only transport-level failures (exit code 2, non-verdict errors)
		// move to the next peer; completed-but-failed jobs (code 1) and
		// authoritative server verdicts stand.
		if err == nil || code != 2 || !tryNextPeer(err) || i == len(servers)-1 {
			break
		}
		if !*quiet {
			log.Printf("peer %s unreachable (%v); trying %s", base, err, servers[i+1])
		}
	}
	if err != nil {
		log.Print(err)
	}
	os.Exit(code)
}

// peerFlag accumulates repeated -peer values.
type peerFlag []string

func (p *peerFlag) String() string { return strings.Join(*p, ",") }

func (p *peerFlag) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty peer URL")
	}
	*p = append(*p, v)
	return nil
}

// tryNextPeer reports whether an error means "this peer is down, the
// next may serve": transport-level failures only. A server's verdict
// (*client.APIError) is authoritative for the whole cluster — any
// member answers for the service — and a canceled or expired context
// ends the run outright.
func tryNextPeer(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// readSpec loads the spec bytes from -spec, -f, or stdin and rejects
// obviously invalid JSON before burning network retries on it.
func readSpec(inline, file string) ([]byte, error) {
	var raw []byte
	var err error
	switch {
	case inline != "" && file != "":
		return nil, fmt.Errorf("use -spec or -f, not both")
	case inline != "":
		raw = []byte(inline)
	case file != "":
		raw, err = os.ReadFile(file)
	default:
		raw, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		return nil, err
	}
	if !json.Valid(raw) {
		return nil, fmt.Errorf("spec is not valid JSON")
	}
	return raw, nil
}

func run(ctx context.Context, c *client.Client, raw []byte, batch, follow bool) (int, error) {
	if batch {
		return runBatch(ctx, c, raw)
	}
	var spec scheduler.JobSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return 2, fmt.Errorf("bad job spec: %v", err)
	}

	if follow {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			return 2, err
		}
		if !st.State.Terminal() {
			for ev := range c.Events(ctx, st.ID) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", ev.Type, ev.Data)
			}
		}
		final, err := c.Await(ctx, st.ID)
		if err != nil {
			return 2, err
		}
		return printJob(final)
	}

	final, err := c.SubmitAndAwait(ctx, spec)
	if err != nil {
		return 2, err
	}
	return printJob(final)
}

// printJob emits the result document (or status when there is none) and
// maps the terminal state to the exit code.
func printJob(st scheduler.JobStatus) (int, error) {
	out := []byte(st.Result)
	if len(out) == 0 {
		var err error
		if out, err = json.MarshalIndent(st, "", "  "); err != nil {
			return 2, err
		}
	}
	os.Stdout.Write(append(out, '\n'))
	if st.State != scheduler.StateDone {
		return 1, fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return 0, nil
}

func runBatch(ctx context.Context, c *client.Client, raw []byte) (int, error) {
	var spec scheduler.BatchSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return 2, fmt.Errorf("bad batch spec: %v", err)
	}
	st, err := c.SubmitBatch(ctx, spec)
	if err != nil {
		return 2, err
	}
	if !st.State.Terminal() {
		if st, err = c.AwaitBatch(ctx, st.ID); err != nil {
			return 2, err
		}
	}
	doc, err := c.BatchResult(ctx, st.ID)
	if err != nil {
		return 2, err
	}
	os.Stdout.Write(append([]byte(doc), '\n'))
	if st.State != scheduler.StateDone {
		for _, cell := range st.Cells {
			if cell.State != scheduler.StateDone {
				fmt.Fprintf(os.Stderr, "cell %s/%s%s: %s %s\n",
					cell.Design, cell.Workload, cell.Trace, cell.State, cell.Error)
			}
		}
		return 1, fmt.Errorf("batch %s ended %s", st.ID, st.State)
	}
	return 0, nil
}
