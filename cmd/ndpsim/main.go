// Command ndpsim runs one workload on one simulated machine design and
// prints the paper's headline metrics: makespan, latency breakdown, hit
// rates, interconnect latency, and the energy decomposition.
//
// Usage:
//
//	ndpsim -workload pr -design NDPExt [-mem hbm|hmc] [-seed 1]
//	       [-accesses 30000] [-scale 1.0] [-verbose] [-json]
//	       [-parallel 4 [-parallel-mode pipeline|shard]]
//	       [-record run.ndptrc] [-trace-sample 100 [-trace-out trace.jsonl]]
//	       [-bandit-seed 7 -arms paper,greedy]   (NDPExt-MAB only)
//
// -list prints the workload names, -list-designs the registered design
// names (including the adaptive ndpext-mab); both exit 0.
//
// With -json, the run emits the canonical JSON result document — the
// same bytes ndpserve caches and serves — as one object on stdout.
//
// With -parallel=N (N >= 2), the run uses the parallel execution modes
// in internal/parallel: "pipeline" (the default) overlaps epoch
// bookkeeping with simulation and is byte-identical to the serial run;
// "shard" splits cores across N independent simulator instances and
// merges, which is statistically equivalent within the declared
// tolerance gate but not bit-exact.
//
// With -record=FILE, every simulated memory access is captured into a
// native trace file (see internal/trace) that replays byte-identically
// via -load-trace, including runs under fault injection. -load-trace
// accepts both native trace files (sniffed by magic, replayed with
// bounded memory) and legacy gob traces; -save-trace writes the native
// format unless the path ends in .gob.
//
// With -trace-sample=N, every Nth simulated memory access is emitted as
// a JSONL record (core, stream, level served, per-level latency in ns)
// to -trace-out ("-" = stdout). -record and -trace-sample compose: both
// probes observe the same run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"ndpext/internal/fault"
	"ndpext/internal/parallel"
	"ndpext/internal/server/result"
	"ndpext/internal/stream"
	"ndpext/internal/system"
	"ndpext/internal/telemetry"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ndpsim: ")

	workload := flag.String("workload", "pr", "workload name (see -list)")
	design := flag.String("design", "NDPExt", "design name (see -list-designs)")
	mem := flag.String("mem", "hbm", "NDP stack memory: hbm or hmc")
	seed := flag.Uint64("seed", 1, "workload generation seed")
	accesses := flag.Int("accesses", 30000, "per-core access budget")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	list := flag.Bool("list", false, "list workloads and exit")
	listDesigns := flag.Bool("list-designs", false, "list registered design names and exit")
	jsonOut := flag.Bool("json", false, "emit the canonical JSON result document instead of text")
	verbose := flag.Bool("verbose", false, "print per-component detail")
	reconfig := flag.String("reconfig", "full", "reconfiguration mode: full, partial, static")
	saveTrace := flag.String("save-trace", "", "write the generated trace to this file and exit (native format; .gob = legacy)")
	loadTrace := flag.String("load-trace", "", "replay a trace file instead of generating (native or legacy gob)")
	record := flag.String("record", "", "capture every simulated access into this native trace file")
	traceSample := flag.Uint64("trace-sample", 0, "emit every Nth access as a JSONL record (0 disables)")
	traceOut := flag.String("trace-out", "-", "JSONL access trace destination (\"-\" = stdout)")
	faults := flag.String("faults", "", `fault-injection spec, e.g. "vault-fail,unit=3,at=40us;cxl-retry,rate=0.01" (see internal/fault)`)
	faultSeed := flag.Uint64("fault-seed", 1, "fault injector seed (deterministic per (spec, seed))")
	banditSeed := flag.Uint64("bandit-seed", 1, "NDPExt-MAB Thompson-sampler seed (ignored by other designs)")
	arms := flag.String("arms", "", `NDPExt-MAB arm set, comma-separated (empty = all: "paper,static,greedy,replicate")`)
	maxWall := flag.Duration("max-wall", 0, "abort after this much wall-clock time, flushing partial results (0 disables)")
	maxCycles := flag.Int64("max-cycles", 0, "abort once simulated time passes this many core cycles (0 disables)")
	parallelN := flag.Int("parallel", 1, "parallel workers: <=1 serial; pipeline mode uses one epoch worker, shard mode runs min(N, cores) shards")
	parallelMode := flag.String("parallel-mode", "pipeline", `parallel strategy: "pipeline" (byte-identical to serial) or "shard" (statistically equivalent; see internal/parallel)`)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workloads.Names(), "\n"))
		return
	}
	if *listDesigns {
		fmt.Println(strings.Join(system.DesignNames(), "\n"))
		return
	}

	d, err := system.ParseDesign(*design)
	if err != nil {
		log.Fatal(err)
	}
	var cfg system.Config
	switch strings.ToLower(*mem) {
	case "hbm":
		cfg = system.DefaultConfig(d)
	case "hmc":
		cfg = system.HMCConfig(d)
	default:
		log.Fatalf("unknown memory type %q", *mem)
	}

	cfg.Reconfig, err = system.ParseReconfigMode(*reconfig)
	if err != nil {
		log.Fatal(err)
	}

	spec, err := fault.Parse(*faults)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Faults = spec
	cfg.FaultSeed = *faultSeed
	cfg.BanditSeed = *banditSeed
	cfg.Adapt.Arms = *arms
	if *arms != "" && d != system.NDPExtMAB {
		log.Fatal("-arms applies only to the NDPExt-MAB design")
	}
	cfg.MaxWall = *maxWall
	cfg.MaxCycles = *maxCycles

	// Load or generate the workload. Native trace files replay through
	// the streaming source (bounded memory, any length); legacy gob
	// traces and generated workloads are materialized.
	genStart := time.Now()
	var (
		tr  *workloads.Trace
		src workloads.Source
	)
	if *loadTrace != "" {
		if isNativeTrace(*loadTrace) {
			r, err := trace.OpenFile(*loadTrace)
			if err != nil {
				log.Fatal(err)
			}
			defer r.Close()
			if d != system.Host && r.Cores() != cfg.NumUnits() {
				log.Fatalf("trace %q has %d cores, machine has %d units", *loadTrace, r.Cores(), cfg.NumUnits())
			}
			if *saveTrace != "" {
				var err error
				tr, err = r.Materialize()
				if err != nil {
					log.Fatal(err)
				}
			} else {
				s, err := r.Source()
				if err != nil {
					log.Fatal(err)
				}
				src = s
			}
		} else {
			var err error
			tr, err = workloads.LoadFile(*loadTrace)
			if err != nil {
				log.Fatal(err)
			}
			if d != system.Host && len(tr.PerCore) != cfg.NumUnits() {
				log.Fatalf("trace %q has %d cores, machine has %d units", *loadTrace, len(tr.PerCore), cfg.NumUnits())
			}
		}
	} else {
		gen, err := workloads.Get(*workload)
		if err != nil {
			log.Fatal(err)
		}
		sc := workloads.DefaultScale()
		sc.AccessesPerCore = *accesses
		sc.Mult = *scale
		tr, err = gen(cfg.NumUnits(), *seed, sc)
		if err != nil {
			log.Fatal(err)
		}
	}
	genDur := time.Since(genStart)

	if *saveTrace != "" {
		var err error
		if strings.HasSuffix(*saveTrace, ".gob") {
			err = tr.SaveFile(*saveTrace)
		} else {
			err = trace.SaveFile(*saveTrace, tr)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %s (%d accesses, %d streams) to %s\n",
			tr.Name, tr.TotalAccesses(), tr.Table.Len(), *saveTrace)
		return
	}

	// Workload identity for recording and the report, uniform across the
	// materialized and streaming paths.
	wname, wtable := workloadIdentity(tr, src)

	var jsonl *telemetry.JSONLProbe
	if *traceSample > 0 {
		var w io.Writer = os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		jsonl = telemetry.NewJSONL(w)
		cfg.AttachProbe(telemetry.Sampled(jsonl, *traceSample))
	}

	var rec *trace.Recorder
	var recFile *os.File
	if *record != "" {
		recCores := cfg.NumUnits()
		if d == system.Host {
			recCores = cfg.HostCores
		}
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		recFile = f
		// The writer snapshots the stream table now, before the run
		// mutates read-only bits: the recorded header must describe the
		// freshly configured state a replay starts from.
		w, err := trace.NewWriter(f, trace.Options{
			Name: wname, Table: wtable, Cores: recCores, Compress: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rec = trace.NewRecorder(w)
		cfg.AttachProbe(rec)
	}

	pmode, err := parallel.ParseMode(*parallelMode)
	if err != nil {
		log.Fatal(err)
	}
	popts := parallel.Options{Workers: *parallelN, Mode: pmode}

	simStart := time.Now()
	var res *system.Result
	if src != nil {
		res, err = parallel.RunSource(context.Background(), cfg, src, popts)
	} else {
		res, err = parallel.Run(context.Background(), cfg, tr, popts)
	}
	if err != nil {
		log.Fatal(err)
	}
	simDur := time.Since(simStart)
	if rec != nil {
		if err := rec.Close(); err != nil {
			log.Fatalf("record: %v", err)
		}
		if err := recFile.Close(); err != nil {
			log.Fatalf("record: %v", err)
		}
	}
	if *jsonOut {
		// The same canonical document the serving layer caches and
		// returns from GET /v1/jobs/{id}/result: scripts can diff
		// ndpsim output against served results byte for byte.
		doc, err := result.Encode(res)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(doc, '\n'))
		if jsonl != nil {
			if err := jsonl.Flush(); err != nil {
				log.Fatalf("trace: %v", err)
			}
		}
		return
	}
	if jsonl != nil {
		if res.Truncated {
			jsonl.Note(struct {
				Truncated bool   `json:"truncated"`
				Reason    string `json:"reason"`
			}{true, res.TruncateReason})
		}
		if err := jsonl.Flush(); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}

	fmt.Printf("workload      %s (%d accesses, %d streams; loaded in %v)\n",
		wname, res.Accesses, wtable.Len(), genDur.Round(time.Millisecond))
	fmt.Printf("design        %v on %s (%d units; simulated in %v)\n",
		res.Design, cfg.Mem.Name, cfg.NumUnits(), simDur.Round(time.Millisecond))
	fmt.Printf("makespan      %v\n", res.Time)
	fmt.Printf("avg access    %.1f ns\n", res.Breakdown.AvgAccessNS())
	fmt.Printf("breakdown     %v\n", res.Breakdown)
	fmt.Printf("cache hits    %.1f%% (interconnect %.1f ns/access)\n",
		100*res.CacheHitRate(), res.AvgInterconnectNS())
	fmt.Printf("energy        %v\n", res.Energy)
	if res.Truncated {
		fmt.Printf("TRUNCATED     %s (partial results above)\n", res.TruncateReason)
	}
	if m := res.Metrics(); m != nil && !spec.Empty() {
		fmt.Printf("faults        injected=%d retries=%d redirects=%d remapped=%d degraded-epochs=%d\n",
			m.Uint("fault.injected"), m.Uint("fault.retries"), m.Uint("fault.vault_redirects"),
			m.Uint("fault.remapped_streams"), m.Uint("fault.degraded_epochs"))
	}
	if res.AdaptArm != "" {
		m := res.Metrics()
		fmt.Printf("adaptive      arm=%s switches=%d modeled-amat=%.1f ns migrated-rows=%d\n",
			res.AdaptArm, res.AdaptSwitches,
			m.Float("adapt.modeled_amat_ns"), m.Uint("adapt.migrated_rows"))
	}
	if rec != nil {
		fmt.Printf("recorded      %d accesses to %s\n", res.Accesses, *record)
	}
	if *verbose {
		fmt.Printf("L1 hits       %d / %d\n", res.L1Hits, res.Accesses)
		fmt.Printf("meta hit rate %.2f   slb hit rate %.2f\n", res.MetaHitRate, res.SLBHitRate)
		fmt.Printf("reconfigs     %d (kept %d, dropped %d)\n", res.Reconfigs, res.ReconfigKept, res.ReconfigDropped)
		fmt.Printf("exceptions    %d\n", res.Exceptions)
		fmt.Printf("replicated    %d / %d rows\n", res.ReplicatedRows, res.RowsAllocated)
		fmt.Printf("sampler cover %d streams\n", res.SamplerCovered)
		for _, sr := range res.StreamReports() {
			mr := 0.0
			if t := sr.Hits + sr.Misses; t > 0 {
				mr = float64(sr.Misses) / float64(t)
			}
			fmt.Printf("  stream %3d %-8s ro=%-5v size=%-8d knee=%-8d rows=%-5d groups=%-2d acc=%-8d missrate=%.2f\n",
				sr.SID, sr.Type, sr.ReadOnly, sr.Bytes, sr.KneeBytes, sr.Rows, sr.Groups, sr.Hits+sr.Misses, mr)
		}
	}
}

// isNativeTrace sniffs the native trace magic so -load-trace accepts
// both formats transparently.
func isNativeTrace(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [6]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	return string(hdr[:]) == "NDPTRC"
}

// workloadIdentity returns the name and stream table of whichever
// workload form is in play.
func workloadIdentity(tr *workloads.Trace, src workloads.Source) (string, *stream.Table) {
	if src != nil {
		return src.Name(), src.Table()
	}
	return tr.Name, tr.Table
}
