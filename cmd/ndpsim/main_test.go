package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildNdpsim compiles the command once per test binary into a temp
// dir and returns the executable path.
func buildNdpsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ndpsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestListDesigns: -list-designs prints every registered design —
// including the adaptive ndpext-mab — one per line, and exits 0.
func TestListDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildNdpsim(t)
	out, err := exec.Command(bin, "-list-designs").Output()
	if err != nil {
		t.Fatalf("-list-designs exited non-zero: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	got := make(map[string]bool, len(lines))
	for _, l := range lines {
		got[l] = true
	}
	for _, want := range []string{"NDPExt", "NDPExt-static", "Nexus", "Whirlpool", "Jigsaw", "Static", "Host", "NDPExt-MAB"} {
		if !got[want] {
			t.Errorf("-list-designs output missing %q:\n%s", want, out)
		}
	}
}

// TestUnknownDesignListsValid: a bogus -design fails with the valid
// list in the message (the structured ParseDesign error).
func TestUnknownDesignListsValid(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildNdpsim(t)
	out, err := exec.Command(bin, "-design", "bogus").CombinedOutput()
	if err == nil {
		t.Fatal("bogus design accepted")
	}
	if !strings.Contains(string(out), "valid:") || !strings.Contains(string(out), "NDPExt-MAB") {
		t.Fatalf("error does not list valid designs:\n%s", out)
	}
}

// TestMABJSONSerialParallelIdentical: the canonical JSON document of an
// adaptive run is byte-identical between the serial path and the
// pipelined parallel path — the CLI-level determinism fence.
func TestMABJSONSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and simulates")
	}
	bin := buildNdpsim(t)
	args := []string{"-design", "ndpext-mab", "-workload", "recsys",
		"-accesses", "4000", "-bandit-seed", "7", "-json"}
	ser, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	par, err := exec.Command(bin, append(args, "-parallel", "2")...).Output()
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !bytes.Equal(ser, par) {
		t.Fatalf("serial and pipelined documents differ:\n%s\nvs\n%s", ser, par)
	}
	if !bytes.Contains(ser, []byte(`"adapt_arm"`)) {
		t.Fatalf("document missing adapt_arm:\n%s", ser)
	}
}
