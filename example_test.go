package ndpext_test

import (
	"fmt"

	"ndpext"
)

// ExampleSimulate runs a tiny built-in workload on a small NDPExt machine
// and prints which design was simulated.
func ExampleSimulate() {
	cfg := ndpext.DefaultConfig(ndpext.DesignNDPExt)
	cfg.NoC.StacksX, cfg.NoC.StacksY = 2, 1
	cfg.NoC.UnitsX, cfg.NoC.UnitsY = 2, 2
	cfg.UnitRows = 64
	cfg.Sampler.MinBytes = 2 << 10
	cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()

	b := ndpext.NewBuilder("demo", cfg.NumUnits(), 200)
	table := b.Indirect(512, 64)
	for c := 0; c < cfg.NumUnits(); c++ {
		for i := 0; !b.Full(c); i++ {
			b.Read(c, table, (i*7+c)%512, 1)
		}
	}
	res, err := ndpext.Simulate(cfg, b.Build())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Design, res.Accesses > 0)
	// Output: NDPExt true
}

// ExampleNewBuilder shows the stream-annotation API: data structures are
// declared as affine or indirect streams, then accessed per core.
func ExampleNewBuilder() {
	b := ndpext.NewBuilder("kernel", 4, 100)
	idx := b.Affine(1024, 4)     // scanned index array
	vals := b.Indirect(4096, 64) // gathered values
	b.Read(0, idx, 0, 1)
	b.Read(0, vals, 42, 2)
	tr := b.Build()
	fmt.Println(tr.Name, tr.Table.Len(), tr.TotalAccesses())
	// Output: kernel 2 2
}

// ExampleWorkloads lists the built-in workloads (the paper's 13 plus
// the phase-changing adaptive-experiment trace).
func ExampleWorkloads() {
	ws := ndpext.Workloads()
	fmt.Println(len(ws), ws[0])
	// Output: 14 backprop
}
