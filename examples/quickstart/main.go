// Quickstart: simulate the paper's headline workload (DLRM-style
// recommendation inference) on the NDPExt machine and on the strongest
// baseline (Nexus), and print the speedup and the metrics behind it.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ndpext"
)

func main() {
	log.SetFlags(0)

	cfg := ndpext.DefaultConfig(ndpext.DesignNDPExt)
	fmt.Printf("machine: %d NDP units (%dx%d stacks of %dx%d), %s stack memory, CXL extended memory\n\n",
		cfg.NumUnits(), cfg.NoC.StacksX, cfg.NoC.StacksY, cfg.NoC.UnitsX, cfg.NoC.UnitsY, cfg.Mem.Name)

	tr, err := ndpext.GenerateTrace("recsys", cfg.NumUnits(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s -- %d accesses across %d cores, %d annotated streams\n\n",
		tr.Name, tr.TotalAccesses(), len(tr.PerCore), tr.Table.Len())

	ndp, err := ndpext.Simulate(ndpext.DefaultConfig(ndpext.DesignNDPExt), tr.Clone())
	if err != nil {
		log.Fatal(err)
	}
	nexus, err := ndpext.Simulate(ndpext.DefaultConfig(ndpext.DesignNexus), tr.Clone())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s\n", "", "NDPExt", "Nexus")
	fmt.Printf("%-22s %14v %14v\n", "makespan", ndp.Time, nexus.Time)
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "DRAM cache hit rate", 100*ndp.CacheHitRate(), 100*nexus.CacheHitRate())
	fmt.Printf("%-22s %12.1fns %12.1fns\n", "interconnect/access", ndp.AvgInterconnectNS(), nexus.AvgInterconnectNS())
	fmt.Printf("%-22s %14s %13.1f%%\n", "metadata cache hits", "(stream SLB)", 100*nexus.MetaHitRate)
	fmt.Printf("%-22s %13.1f%% %14s\n", "SLB hit rate", 100*ndp.SLBHitRate, "(line meta)")
	fmt.Printf("%-22s %13.1fuJ %13.1fuJ\n", "total energy", ndp.Energy.Total()/1e6, nexus.Energy.Total()/1e6)
	fmt.Printf("\nNDPExt speedup over Nexus: %.2fx\n", float64(nexus.Time)/float64(ndp.Time))
	fmt.Printf("NDPExt energy saving:      %.1f%%\n", 100*(1-ndp.Energy.Total()/nexus.Energy.Total()))
}
