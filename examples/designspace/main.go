// Design-space exploration with the public API: sweep two of the paper's
// §VII-C design knobs -- the CXL link latency (Fig. 8b) and the indirect
// stream cache associativity (Fig. 9a) -- on a workload of your choice,
// printing how NDPExt's advantage over Nexus moves.
//
// Run from the repository root:
//
//	go run ./examples/designspace [-workload recsys] [-accesses 12000]
package main

import (
	"flag"
	"fmt"
	"log"

	"ndpext"
)

func main() {
	log.SetFlags(0)
	workload := flag.String("workload", "recsys", "workload to sweep")
	accesses := flag.Int("accesses", 12000, "per-core access budget")
	flag.Parse()

	base := ndpext.DefaultConfig(ndpext.DesignNDPExt)
	tr, err := ndpext.GenerateTraceN(*workload, base.NumUnits(), 1, *accesses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CXL link latency sweep (%s) -- Fig. 8(b) shape: slower links favour NDPExt\n", *workload)
	fmt.Printf("%10s %14s %14s %10s\n", "latency", "NDPExt", "Nexus", "speedup")
	for _, ns := range []float64{50, 100, 200, 400} {
		mk := func(d ndpext.Design) ndpext.Config {
			cfg := ndpext.DefaultConfig(d)
			cfg.CXL.LinkLatency = ndpext.FromNS(ns)
			return cfg
		}
		nd, err := ndpext.Simulate(mk(ndpext.DesignNDPExt), tr.Clone())
		if err != nil {
			log.Fatal(err)
		}
		nx, err := ndpext.Simulate(mk(ndpext.DesignNexus), tr.Clone())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0fns %14v %14v %9.2fx\n", ns, nd.Time, nx.Time,
			float64(nx.Time)/float64(nd.Time))
	}

	fmt.Printf("\nIndirect-cache associativity sweep (%s) -- Fig. 9(a) shape: direct-mapped is close\n", *workload)
	fmt.Printf("%10s %14s %10s %10s\n", "ways", "makespan", "hit-rate", "vs-1-way")
	var base1 *ndpext.Result
	for _, ways := range []int{1, 4, 16, 64} {
		cfg := ndpext.DefaultConfig(ndpext.DesignNDPExt)
		cfg.Stream.IndirectWays = ways
		res, err := ndpext.Simulate(cfg, tr.Clone())
		if err != nil {
			log.Fatal(err)
		}
		if ways == 1 {
			base1 = res
		}
		fmt.Printf("%10d %14v %9.1f%% %9.2fx\n", ways, res.Time,
			100*res.CacheHitRate(), float64(base1.Time)/float64(res.Time))
	}
}
