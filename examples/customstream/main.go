// Custom workload with the stream API: annotate your own kernel's data
// structures as affine/indirect streams (the paper's configure_stream,
// Table I) and see how NDPExt manages them -- which streams replicate,
// which stay shared, and what the write exception does to a stream that
// turns out not to be read-only.
//
// The kernel here is a toy key-value aggregation: every core scans its
// slice of a request log (affine), gathers values from a shared
// Zipf-popular table (indirect, read-only -- a replication candidate),
// and accumulates into a per-core histogram (affine, written).
//
// Run from the repository root:
//
//	go run ./examples/customstream
package main

import (
	"fmt"
	"log"

	"ndpext"
)

func main() {
	log.SetFlags(0)

	cfg := ndpext.DefaultConfig(ndpext.DesignNDPExt)
	cores := cfg.NumUnits()
	const perCore = 12000

	b := ndpext.NewBuilder("kvagg", cores, perCore)
	requests := b.Affine(cores*perCore/3+1024, 8) // request log, scanned once
	table := b.Indirect(32768, 64)                // shared hot value table
	hist := b.Affine(cores*256, 4)                // per-core histograms

	// A deterministic Zipf-ish popularity: key = i^2 mod tableSize gives
	// a skewed but reproducible mix without importing the RNG.
	for c := 0; c < cores; c++ {
		for i := 0; !b.Full(c); i++ {
			b.Read(c, requests, (c*perCore/3+i/3)%int(requests.NumElements()), 1)
			key := (i*i + c*7) % 4096 // hot head: 4096 of 32768 entries
			b.Read(c, table, key, 2)
			b.Write(c, hist, c*256+key%256, 1)
		}
	}
	tr := b.Build()
	fmt.Printf("custom workload: %d accesses, %d streams\n\n", tr.TotalAccesses(), tr.Table.Len())

	res, err := ndpext.Simulate(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan        %v\n", res.Time)
	fmt.Printf("cache hit rate  %.1f%%\n", 100*res.CacheHitRate())
	fmt.Printf("interconnect    %.1f ns/access\n", res.AvgInterconnectNS())
	fmt.Printf("reconfigs       %d\n", res.Reconfigs)
	fmt.Printf("\nper-stream outcome:\n")
	for _, sr := range res.StreamReports() {
		kind := "shared"
		if sr.Groups > 1 {
			kind = fmt.Sprintf("replicated x%d", sr.Groups)
		}
		mr := 0.0
		if t := sr.Hits + sr.Misses; t > 0 {
			mr = float64(sr.Misses) / float64(t)
		}
		fmt.Printf("  stream %3d %-8s ro=%-5v %8d B in %4d rows  %-14s miss %.1f%%\n",
			sr.SID, sr.Type, sr.ReadOnly, sr.Bytes, sr.Rows, kind, 100*mr)
	}
	fmt.Println("\nNote: the table stream was declared read-only by never being written;")
	fmt.Println("the histogram stream raised a write exception on its first store and")
	fmt.Println("was collapsed to a single replication group (paper §IV-B).")
}
