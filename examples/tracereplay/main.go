// Trace replay workflow: generate an expensive workload once, save it,
// and replay the identical trace against several designs — the
// reproducible-comparison pattern (every design sees byte-identical
// accesses, and the file can be shared between machines).
//
// Run from the repository root:
//
//	go run ./examples/tracereplay [-trace /tmp/gnn.trace] [-accesses 8000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ndpext"
)

func main() {
	log.SetFlags(0)
	path := flag.String("trace", "/tmp/ndpext-gnn.trace", "trace file path")
	workload := flag.String("workload", "gnn", "workload to generate if the file is missing")
	accesses := flag.Int("accesses", 16000, "per-core budget when generating")
	flag.Parse()

	cfg := ndpext.DefaultConfig(ndpext.DesignNDPExt)

	tr, err := ndpext.LoadTrace(*path)
	switch {
	case err == nil:
		fmt.Printf("replaying %s: %s, %d accesses, %d streams\n",
			*path, tr.Name, tr.TotalAccesses(), tr.Table.Len())
	case os.IsNotExist(err):
		fmt.Printf("generating %s (%d accesses/core) -> %s\n", *workload, *accesses, *path)
		tr, err = ndpext.GenerateTraceN(*workload, cfg.NumUnits(), 1, *accesses)
		if err != nil {
			log.Fatal(err)
		}
		if err := ndpext.SaveTrace(tr, *path); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal(err)
	}

	fmt.Printf("\n%-15s %12s %9s %10s\n", "design", "makespan", "hit", "energy-uJ")
	for _, d := range []ndpext.Design{ndpext.DesignNexus, ndpext.DesignNDPExtStatic, ndpext.DesignNDPExt} {
		res, err := ndpext.Simulate(ndpext.DefaultConfig(d), tr.Clone())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15v %12v %8.1f%% %10.1f\n",
			d, res.Time, 100*res.CacheHitRate(), res.Energy.Total()/1e6)
	}
	fmt.Printf("\nreplay the same file anywhere: results are bit-identical per design.\n")
}
