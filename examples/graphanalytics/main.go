// Graph analytics on NDP with extended memory: run the GAP-style graph
// kernels (bfs, pr, cc) across all cache-management designs and print the
// per-design latency breakdowns -- the scenario from the paper's
// introduction, where fine-grained irregular accesses stress both
// metadata management and data placement.
//
// Run from the repository root:
//
//	go run ./examples/graphanalytics [-workloads pr,bfs,cc] [-accesses 12000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ndpext"
)

func main() {
	log.SetFlags(0)
	workloadsFlag := flag.String("workloads", "pr,bfs,cc", "comma-separated graph workloads")
	accesses := flag.Int("accesses", 12000, "per-core access budget")
	flag.Parse()

	for _, w := range strings.Split(*workloadsFlag, ",") {
		w = strings.TrimSpace(w)
		cfg := ndpext.DefaultConfig(ndpext.DesignNDPExt)

		tr, err := ndpext.GenerateTraceN(w, cfg.NumUnits(), 1, *accesses)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s (%d accesses, %d streams) ==\n", w, tr.TotalAccesses(), tr.Table.Len())
		fmt.Printf("%-15s %12s %8s %8s %10s %s\n",
			"design", "makespan", "hit", "miss", "inter-ns", "latency breakdown")
		var host *ndpext.Result
		h, err := ndpext.Simulate(ndpext.DefaultConfig(ndpext.DesignHost), tr.Clone())
		if err != nil {
			log.Fatal(err)
		}
		host = h
		fmt.Printf("%-15s %12v %8s %8s %10s %s\n",
			"Host", host.Time, "-", "-", "-", host.Breakdown.String())

		for _, d := range ndpext.Designs() {
			res, err := ndpext.Simulate(ndpext.DefaultConfig(d), tr.Clone())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-15s %12v %7.1f%% %7.1f%% %10.1f %s   (%.2fx vs host)\n",
				d, res.Time, 100*res.CacheHitRate(), 100*res.MissRate(),
				res.AvgInterconnectNS(), res.Breakdown.String(),
				float64(host.Time)/float64(res.Time))
		}
		fmt.Println()
	}
}
