package ndpext_test

import (
	"testing"

	"ndpext"
)

// smallConfig shrinks the machine so API tests run in milliseconds.
func smallConfig(d ndpext.Design) ndpext.Config {
	cfg := ndpext.DefaultConfig(d)
	cfg.NoC.StacksX, cfg.NoC.StacksY = 2, 1
	cfg.NoC.UnitsX, cfg.NoC.UnitsY = 2, 2
	cfg.UnitRows = 64
	cfg.Sampler.MinBytes = 2 << 10
	cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()
	cfg.EpochCycles = 100_000
	cfg.HostCores = 4
	return cfg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	tr, err := ndpext.GenerateTrace("recsys", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ndpext.Simulate(smallConfig(ndpext.DesignNDPExt), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Accesses == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if hr := res.CacheHitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("implausible hit rate %v", hr)
	}
}

func TestWorkloadsListed(t *testing.T) {
	if got := len(ndpext.Workloads()); got != 14 {
		t.Fatalf("%d workloads, want the paper's 13 plus phased", got)
	}
	if _, err := ndpext.GenerateTrace("not-a-workload", 8, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDesignsCoverPaperFigure5(t *testing.T) {
	ds := ndpext.Designs()
	if len(ds) != 6 {
		t.Fatalf("%d designs, want 6", len(ds))
	}
	if ds[len(ds)-1] != ndpext.DesignNDPExt {
		t.Fatal("NDPExt should be the last (headline) design")
	}
}

func TestCustomWorkloadBuilder(t *testing.T) {
	// A tiny custom kernel: each core scans a shared read-only table and
	// gathers from it through an index array.
	const cores = 8
	b := ndpext.NewBuilder("custom", cores, 500)
	table := b.Indirect(1024, 64)
	index := b.Affine(4096, 4)
	out := b.Affine(4096, 4)
	for c := 0; c < cores; c++ {
		for i := 0; !b.Full(c); i++ {
			b.Read(c, index, i%4096, 1)
			b.Read(c, table, (i*37)%1024, 2)
			b.Write(c, out, i%4096, 1)
		}
	}
	tr := b.Build()
	if tr.TotalAccesses() == 0 {
		t.Fatal("builder produced an empty trace")
	}
	res, err := ndpext.Simulate(smallConfig(ndpext.DesignNDPExt), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != uint64(tr.TotalAccesses()) {
		t.Fatal("not all accesses simulated")
	}
}

func TestAffine2DOrderExposed(t *testing.T) {
	b := ndpext.NewBuilder("order", 2, 100)
	m := b.Affine2D(16, 16, 4, ndpext.OrderYXZ)
	if m.Order != ndpext.OrderYXZ {
		t.Fatal("order not preserved")
	}
}

func TestHMCConfig(t *testing.T) {
	if ndpext.HMCConfig(ndpext.DesignNDPExt).Mem.Name != "HMC2" {
		t.Fatal("HMC config wrong memory")
	}
}

func TestExperimentScales(t *testing.T) {
	q, f := ndpext.QuickExperiments(), ndpext.FullExperiments()
	if len(q.Workloads) >= len(f.Workloads) {
		t.Fatal("quick scale not smaller than full")
	}
	if len(f.Workloads) != 13 {
		t.Fatalf("full scale covers %d workloads", len(f.Workloads))
	}
}
